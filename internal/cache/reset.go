package cache

import (
	"fmt"
	"math/rand"

	"repro/internal/blocks"
	"repro/internal/mealy"
	"repro/internal/policy"
)

// This file implements the reset-sequence ("bootstrapping") machinery of
// §7.1: learning a policy requires a sequence of memory accesses that drives
// a cache set into one fixed, known state from any state it might be in.
// Flush+Refill works on many sets, but for example the Skylake L2 needs the
// dedicated sequence D C B A @.
//
// A candidate sequence is verified against every reachable control state of
// the policy: it is a reset iff all runs converge to a single cache state
// whose content consists only of blocks from the sequence itself. When a
// flush instruction is available the runs start from invalid content;
// otherwise the pre-reset content is modeled by placeholder "dirty" blocks,
// which is sound by the data-independence of replacement policies (§1).

// ResetResult describes a verified reset sequence.
type ResetResult struct {
	// Sequence is the block access sequence (applied after a flush when
	// FlushFirst is set).
	Sequence []blocks.Block
	// FlushFirst records whether the sequence must be preceded by a full
	// flush of the set.
	FlushFirst bool
	// Content is the unique cache content after the reset, indexed by line.
	Content []blocks.Block
	// StateKey is the unique policy control state after the reset.
	StateKey string
}

// Name renders the reset sequence in the notation of Table 4, e.g. "F+R"
// for flush+refill or "D C B A @".
func (r ResetResult) Name() string {
	fill := blocks.Join(r.Sequence)
	if r.FlushFirst {
		if fill == blocks.Join(blocks.Ordered(len(r.Content))) {
			return "F+R"
		}
		return "Flush + " + fill
	}
	return fill
}

// dirtyBlock returns placeholder names for pre-reset cache content. The
// names are outside the universe produced by blocks.Name, so they can never
// collide with reset-sequence blocks.
func dirtyBlock(i int) blocks.Block { return fmt.Sprintf("#dirty%d", i) }

// reachableStates enumerates every reachable control state of pol as
// independent policy clones. maxStates guards against state-space blowups.
func reachableStates(pol policy.Policy, maxStates int) ([]policy.Policy, error) {
	n := pol.Assoc()
	numIn := policy.NumInputs(n)
	root := pol.Clone()
	root.Reset()
	seen := map[string]bool{root.StateKey(): true}
	list := []policy.Policy{root}
	for head := 0; head < len(list); head++ {
		for a := 0; a < numIn; a++ {
			succ := list[head].Clone()
			policy.Apply(succ, a)
			if !seen[succ.StateKey()] {
				if maxStates > 0 && len(list) >= maxStates {
					return nil, fmt.Errorf("cache: more than %d reachable control states", maxStates)
				}
				seen[succ.StateKey()] = true
				list = append(list, succ)
			}
		}
	}
	return list, nil
}

// VerifyReset checks whether seq (optionally after a flush) drives a set
// governed by pol into a unique state from every reachable control state.
// On success it returns the unique post-reset state.
func VerifyReset(pol policy.Policy, seq []blocks.Block, flushFirst bool, maxStates int) (*ResetResult, error) {
	states, err := reachableStates(pol, maxStates)
	if err != nil {
		return nil, err
	}
	n := pol.Assoc()
	var final *Set
	for _, cs := range states {
		s := &Set{n: n, content: make([]blocks.Block, n), pol: cs.Clone()}
		s.bind() // compiled policies keep the kernel fast path here too
		if !flushFirst {
			for i := range s.content {
				s.content[i] = dirtyBlock(i)
			}
		}
		for _, b := range seq {
			s.Access(b)
		}
		for _, c := range s.content {
			if c == "" || (len(c) > 0 && c[0] == '#') {
				return nil, fmt.Errorf("cache: sequence leaves stale or invalid content %q", c)
			}
		}
		if final == nil {
			final = s
		} else if final.StateKey() != s.StateKey() {
			return nil, fmt.Errorf("cache: sequence does not converge: %s vs %s", final.StateKey(), s.StateKey())
		}
	}
	return &ResetResult{
		Sequence:   append([]blocks.Block(nil), seq...),
		FlushFirst: flushFirst,
		Content:    final.Content(),
		StateKey:   final.Policy().StateKey(),
	}, nil
}

// FindResetSequence searches for a reset sequence for pol. It first tries
// the idioms observed in the paper (Flush+Refill, a double fill, and the
// reversed-fill prefix D C B A @), then falls back to a seeded random search
// over sequences of bounded length. maxStates bounds the policy state space
// explored during verification.
func FindResetSequence(pol policy.Policy, maxStates int) (*ResetResult, error) {
	n := pol.Assoc()
	fill := blocks.Ordered(n)
	reversed := make([]blocks.Block, n)
	for i, b := range fill {
		reversed[n-1-i] = b
	}

	type candidate struct {
		seq        []blocks.Block
		flushFirst bool
	}
	cands := []candidate{
		{fill, true}, // F+R
		{append(append([]blocks.Block{}, fill...), fill...), true},      // Flush + @ @
		{append(append([]blocks.Block{}, fill...), fill...), false},     // @ @ without flush
		{append(append([]blocks.Block{}, reversed...), fill...), true},  // Flush + D C B A @
		{append(append([]blocks.Block{}, reversed...), fill...), false}, // D C B A @
	}
	for _, c := range cands {
		if r, err := VerifyReset(pol, c.seq, c.flushFirst, maxStates); err == nil {
			return r, nil
		}
	}

	// Randomized fallback: repeated accesses within the first n blocks
	// followed by a fill, mirroring how the paper's authors searched by
	// hand. The RNG is fixed for reproducibility.
	rng := rand.New(rand.NewSource(0xCACE))
	for attempt := 0; attempt < 2000; attempt++ {
		l := 1 + rng.Intn(3*n)
		seq := make([]blocks.Block, 0, l+n)
		for i := 0; i < l; i++ {
			seq = append(seq, fill[rng.Intn(n)])
		}
		seq = append(seq, fill...)
		flushFirst := attempt%2 == 0
		if r, err := VerifyReset(pol, seq, flushFirst, maxStates); err == nil {
			return r, nil
		}
	}
	return nil, fmt.Errorf("cache: no reset sequence found for %s (assoc %d)", pol.Name(), n)
}

// ExtractMachine is a convenience wrapper over mealy.FromPolicy for callers
// that already work with cache sets.
func ExtractMachine(pol policy.Policy, maxStates int) (*mealy.Machine, error) {
	return mealy.FromPolicy(pol, maxStates)
}
