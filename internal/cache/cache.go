// Package cache implements the n-way set-associative cache set model of
// Definition 2.3: a labeled transition system over memory blocks whose
// replacement decisions are delegated to a policy.Policy. It is the
// software-simulated cache used for the paper's first case study (§6), the
// building block of the simulated CPU hierarchy (internal/hw), and the home
// of the reset-sequence search used to bootstrap learning from hardware
// (§7.1).
package cache

import (
	"fmt"
	"strings"

	"repro/internal/blocks"
	"repro/internal/policy"
)

// Outcome is a cache output: Hit or Miss.
type Outcome bool

// Cache outputs (Table 1).
const (
	Hit  Outcome = true
	Miss Outcome = false
)

// String renders the outcome like the paper's traces.
func (o Outcome) String() string {
	if o == Hit {
		return "Hit"
	}
	return "Miss"
}

// Set is one cache set: an n-tuple of memory blocks plus the control state of
// its replacement policy. The zero line content "" denotes an invalid
// (empty) line, which only arises after Flush; the Definition 2.3 semantics
// always operates on full sets.
//
// When the policy is a compiled *policy.Table the set carries the control
// state as a bare table state id instead of going through the Policy
// interface: transitions are array lookups, StateKey is a precomputed
// string, and Clone copies an int32 instead of deep-copying a policy
// object. The table's arrays are immutable and shared, so many sets (the
// hardware simulator materializes thousands) can run on one compiled table.
type Set struct {
	n       int
	content []blocks.Block
	pol     policy.Policy
	tab     *policy.Table // non-nil when pol is compiled: hot paths bypass the interface
	tstate  int32         // current table state (meaningful when tab != nil)
}

// bind activates the compiled-kernel fast path when the set's policy is a
// table, adopting the policy's current control state.
func (s *Set) bind() {
	if t, ok := s.pol.(*policy.Table); ok {
		s.tab = t
		s.tstate = t.State()
	}
}

// NewSet returns a cache set driven by pol, initialized by Reset: the
// content is the first n blocks A, B, ... in lines 0..n-1 and the policy is
// in its initial control state.
func NewSet(pol policy.Policy) *Set {
	s := &Set{n: pol.Assoc(), content: make([]blocks.Block, pol.Assoc()), pol: pol}
	s.bind()
	s.Reset()
	return s
}

// NewEmptySet returns a cache set with all lines invalid and the policy in
// its initial control state, as used inside the hardware simulator where
// sets start cold.
func NewEmptySet(pol policy.Policy) *Set {
	s := &Set{n: pol.Assoc(), content: make([]blocks.Block, pol.Assoc()), pol: pol}
	s.bind()
	if s.tab != nil {
		// Don't touch the (possibly shared) table object; the set's own
		// state id is the control state.
		s.tstate = s.tab.InitState()
	} else {
		pol.Reset()
	}
	return s
}

// Assoc returns the associativity n.
func (s *Set) Assoc() int { return s.n }

// Policy exposes the underlying replacement policy: the shared policy
// object on the interpreted path, or an independent table view positioned
// at the set's current control state on the compiled path (the set's state
// lives in the set, not in the shared table).
func (s *Set) Policy() policy.Policy {
	if s.tab != nil {
		return s.tab.At(s.tstate)
	}
	return s.pol
}

// Reset restores the canonical initial cache state: content A, B, ... in
// lines 0..n-1 with the policy in its initial control state cs0. This is
// the idealized reset available on software-simulated caches.
func (s *Set) Reset() {
	copy(s.content, blocks.Ordered(s.n))
	if s.tab != nil {
		s.tstate = s.tab.InitState()
		return
	}
	s.pol.Reset()
}

// Content returns a copy of the current cache content; empty strings are
// invalid lines.
func (s *Set) Content() []blocks.Block {
	out := make([]blocks.Block, s.n)
	copy(out, s.content)
	return out
}

// Lookup returns the line holding b, or -1.
func (s *Set) Lookup(b blocks.Block) int {
	for i, c := range s.content {
		if c == b && c != "" {
			return i
		}
	}
	return -1
}

// Access performs one memory access (rules Hit/Miss of Figure 2) and
// additionally returns the evicted line index (-1 when none) so that callers
// such as the hardware simulator can maintain inclusivity.
func (s *Set) Access(b blocks.Block) (Outcome, int) {
	oc, line, _ := s.AccessEvicted(b)
	return oc, line
}

// AccessEvicted is Access extended with the name of the displaced block,
// used by the inclusive-hierarchy back-invalidation without copying the
// cache content.
func (s *Set) AccessEvicted(b blocks.Block) (Outcome, int, blocks.Block) {
	if b == "" {
		panic("cache: access to empty block name")
	}
	if i := s.Lookup(b); i >= 0 {
		s.onHit(i)
		return Hit, -1, ""
	}
	// Fill an invalid line first, as hardware does; the policy observes the
	// fill as an access to that line. With a full set this branch is dead
	// and the semantics is exactly Definition 2.3.
	for i, c := range s.content {
		if c == "" {
			s.content[i] = b
			s.onHit(i)
			return Miss, -1, ""
		}
	}
	v := s.onMiss()
	evicted := s.content[v]
	s.content[v] = b
	return Miss, v, evicted
}

// onHit advances the control state on a hit of line i: one table lookup on
// the compiled path, an interface call otherwise.
func (s *Set) onHit(i int) {
	if s.tab != nil {
		s.tstate, _ = s.tab.Step(s.tstate, i)
		return
	}
	s.pol.OnHit(i)
}

// onMiss advances the control state on an eviction and returns the victim.
func (s *Set) onMiss() int {
	if s.tab != nil {
		next, v := s.tab.Step(s.tstate, s.n)
		s.tstate = next
		return int(v)
	}
	return s.pol.OnMiss()
}

// AccessAll accesses every block in sequence and returns the outcome trace.
func (s *Set) AccessAll(bs []blocks.Block) []Outcome {
	out := make([]Outcome, len(bs))
	for i, b := range bs {
		out[i], _ = s.Access(b)
	}
	return out
}

// FlushBlock invalidates b's line if present (the clflush analog) and
// reports whether it was present. The policy control state is deliberately
// left untouched: on the modeled Intel CPUs flushing data does not reset the
// replacement metadata, which is why Flush+Refill is not a universal reset
// sequence (§7.1).
func (s *Set) FlushBlock(b blocks.Block) bool {
	if i := s.Lookup(b); i >= 0 {
		s.content[i] = ""
		return true
	}
	return false
}

// Flush invalidates every line (the wbinvd analog), keeping the policy
// control state.
func (s *Set) Flush() {
	for i := range s.content {
		s.content[i] = ""
	}
}

// StateKey canonically encodes the full cache state (content plus policy
// control state) for use by the reset-sequence search. Compiled and
// interpreted sets produce bit-identical keys: the table serves the
// canonical interpreted StateKey strings.
func (s *Set) StateKey() string {
	return strings.Join(s.content, ",") + "|" + s.polKey()
}

// polKey returns the policy control-state key without an interface call on
// the compiled path.
func (s *Set) polKey() string {
	if s.tab != nil {
		return s.tab.KeyOf(s.tstate)
	}
	return s.pol.StateKey()
}

// Clone returns an independent deep copy of the cache set. On the compiled
// path the policy is not cloned at all: the table is shared and the control
// state is one int32.
func (s *Set) Clone() *Set {
	c := &Set{n: s.n, content: make([]blocks.Block, s.n), pol: s.pol, tab: s.tab, tstate: s.tstate}
	if s.tab == nil {
		c.pol = s.pol.Clone()
	}
	copy(c.content, s.content)
	return c
}

// String renders the cache state for debugging.
func (s *Set) String() string {
	return fmt.Sprintf("⟨[%s], %s⟩", strings.Join(s.content, " "), s.polKey())
}
