package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/blocks"
	"repro/internal/policy"
)

func TestExample24LRUTrace(t *testing.T) {
	// Example 2.4 with associativity 2: from ⟨⟨A,B⟩, cs0⟩, B hits, A hits
	// (flipping the control state), C misses and evicts line 0.
	s := NewSet(policy.MustNew("LRU", 2))
	if oc, _ := s.Access("B"); oc != Hit {
		t.Fatal("B should hit")
	}
	if oc, _ := s.Access("A"); oc != Hit {
		t.Fatal("A should hit")
	}
	oc, evicted := s.Access("C")
	if oc != Miss {
		t.Fatal("C should miss")
	}
	if evicted != 1 {
		t.Errorf("C evicted line %d, want 1 (B was least recently used)", evicted)
	}
	got := s.Content()
	if got[0] != "A" || got[1] != "C" {
		t.Errorf("content %v, want [A C]", got)
	}
}

func TestFigure1ToyTrace(t *testing.T) {
	// Figure 1c: on a 2-way LRU set, A B C A yields Hit Hit Miss Miss and
	// A B C B yields Hit Hit Miss Hit.
	s := NewSet(policy.MustNew("LRU", 2))
	got := s.AccessAll([]blocks.Block{"A", "B", "C", "A"})
	want := []Outcome{Hit, Hit, Miss, Miss}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("A B C A: step %d = %v, want %v", i, got[i], want[i])
		}
	}
	s.Reset()
	got = s.AccessAll([]blocks.Block{"A", "B", "C", "B"})
	want = []Outcome{Hit, Hit, Miss, Hit}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("A B C B: step %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestResetRestoresInitialState(t *testing.T) {
	s := NewSet(policy.MustNew("PLRU", 4))
	before := s.StateKey()
	s.AccessAll([]blocks.Block{"X", "Y", "Z", "A", "X"})
	s.Reset()
	if s.StateKey() != before {
		t.Errorf("Reset: %s, want %s", s.StateKey(), before)
	}
	want := blocks.Ordered(4)
	for i, b := range s.Content() {
		if b != want[i] {
			t.Errorf("content[%d] = %s, want %s", i, b, want[i])
		}
	}
}

func TestAccessFillsInvalidLinesFirst(t *testing.T) {
	s := NewEmptySet(policy.MustNew("LRU", 4))
	for i, b := range []blocks.Block{"P", "Q", "R", "S"} {
		oc, ev := s.Access(b)
		if oc != Miss || ev != -1 {
			t.Fatalf("cold access %d: outcome %v evicted %d", i, oc, ev)
		}
		if s.Lookup(b) != i {
			t.Fatalf("block %s filled line %d, want %d", b, s.Lookup(b), i)
		}
	}
	// The set is now full: the next miss must evict.
	if _, ev := s.Access("T"); ev == -1 {
		t.Error("miss on a full set did not evict")
	}
}

func TestFlushBlockKeepsPolicyState(t *testing.T) {
	s := NewSet(policy.MustNew("LRU", 4))
	key := s.Policy().StateKey()
	if !s.FlushBlock("B") {
		t.Fatal("B not resident")
	}
	if s.FlushBlock("B") {
		t.Error("B flushed twice")
	}
	if s.Policy().StateKey() != key {
		t.Error("FlushBlock changed the policy control state")
	}
	if oc, _ := s.Access("B"); oc != Miss {
		t.Error("flushed block should miss on re-access")
	}
	if oc, _ := s.Access("B"); oc != Hit {
		t.Error("re-accessed block should have been refilled")
	}
}

func TestFlushInvalidatesAll(t *testing.T) {
	s := NewSet(policy.MustNew("MRU", 4))
	s.Flush()
	for _, b := range s.Content() {
		if b != "" {
			t.Errorf("line still holds %q after Flush", b)
		}
	}
	if oc, _ := s.Access("A"); oc != Miss {
		t.Error("access after Flush should miss")
	}
}

func TestCloneIsIndependent(t *testing.T) {
	s := NewSet(policy.MustNew("SRRIP-HP", 4))
	c := s.Clone()
	c.AccessAll([]blocks.Block{"X", "Y", "Z"})
	if s.StateKey() == c.StateKey() {
		t.Error("clone state tracked original")
	}
	s2 := NewSet(policy.MustNew("SRRIP-HP", 4))
	if s.StateKey() != s2.StateKey() {
		t.Error("original mutated by clone accesses")
	}
}

// TestCacheDeterminism: identical queries from reset produce identical
// hit/miss traces (Proposition 3.2 rests on this).
func TestCacheDeterminism(t *testing.T) {
	for _, name := range []string{"FIFO", "LRU", "PLRU", "MRU", "LIP", "SRRIP-HP", "SRRIP-FP", "New1", "New2"} {
		s := NewSet(policy.MustNew(name, 4))
		f := func(raw []uint8) bool {
			q := make([]blocks.Block, len(raw))
			for i, r := range raw {
				q[i] = blocks.Name(int(r) % 6)
			}
			s.Reset()
			a := s.AccessAll(q)
			s.Reset()
			b := s.AccessAll(q)
			for i := range a {
				if a[i] != b[i] {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// TestRepeatedAccessHits: accessing the same block twice in a row always
// hits the second time — a basic cache invariant.
func TestRepeatedAccessHits(t *testing.T) {
	for _, name := range []string{"FIFO", "LRU", "PLRU", "MRU", "LIP", "SRRIP-HP", "New1", "New2"} {
		s := NewSet(policy.MustNew(name, 4))
		rng := rand.New(rand.NewSource(13))
		for i := 0; i < 300; i++ {
			b := blocks.Name(rng.Intn(8))
			s.Access(b)
			if oc, _ := s.Access(b); oc != Hit {
				t.Fatalf("%s: immediate re-access of %s missed", name, b)
			}
		}
	}
}

// TestWorkingSetFits: accessing n blocks cyclically, every pass after the
// first consists solely of hits for any sane policy.
func TestWorkingSetFits(t *testing.T) {
	for _, name := range []string{"FIFO", "LRU", "PLRU", "MRU", "LIP", "SRRIP-HP", "SRRIP-FP", "New1", "New2"} {
		s := NewSet(policy.MustNew(name, 4))
		ws := blocks.Ordered(4)
		s.AccessAll(ws) // warm (already resident, but normalizes recency)
		for pass := 0; pass < 5; pass++ {
			for _, b := range ws {
				if oc, _ := s.Access(b); oc != Hit {
					t.Fatalf("%s: block %s missed with a fitting working set", name, b)
				}
			}
		}
	}
}

// TestCompiledSetMatchesInterpreted drives a compiled-kernel set and an
// interpreted set through an identical random mix of accesses, flushes,
// clones and resets, asserting bit-identical observable behaviour at every
// step: outcomes, evicted lines and blocks, content, and the full StateKey
// (which the reset-sequence search uses for state identity).
func TestCompiledSetMatchesInterpreted(t *testing.T) {
	for _, name := range []string{"FIFO", "LRU", "PLRU", "MRU", "LIP", "SRRIP-HP", "SRRIP-FP", "New1", "New2"} {
		pol := policy.MustNew(name, 4)
		tab, err := policy.Compile(pol)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		ks := NewSet(tab)
		is := NewSet(policy.MustNew(name, 4))
		if ks.tab == nil {
			t.Fatalf("%s: compiled set did not bind the kernel", name)
		}
		rng := rand.New(rand.NewSource(29))
		check := func(step int) {
			if ks.StateKey() != is.StateKey() {
				t.Fatalf("%s step %d: compiled state %q, interpreted %q", name, step, ks.StateKey(), is.StateKey())
			}
		}
		for i := 0; i < 500; i++ {
			switch rng.Intn(10) {
			case 0:
				b := blocks.Name(rng.Intn(8))
				if ks.FlushBlock(b) != is.FlushBlock(b) {
					t.Fatalf("%s step %d: FlushBlock(%s) diverged", name, i, b)
				}
			case 1:
				ks, is = ks.Clone(), is.Clone()
			case 2:
				ks.Reset()
				is.Reset()
			default:
				b := blocks.Name(rng.Intn(8))
				ko, kl, kb := ks.AccessEvicted(b)
				io, il, ib := is.AccessEvicted(b)
				if ko != io || kl != il || kb != ib {
					t.Fatalf("%s step %d: Access(%s) = (%v,%d,%q) compiled vs (%v,%d,%q) interpreted",
						name, i, b, ko, kl, kb, io, il, ib)
				}
			}
			check(i)
		}
		// Policy() must expose the current control state on both paths.
		if ks.Policy().StateKey() != is.Policy().StateKey() {
			t.Fatalf("%s: Policy() views diverge: %q vs %q", name, ks.Policy().StateKey(), is.Policy().StateKey())
		}
	}
}

// TestCompiledSetCloneSharesTable: cloning a compiled set must not clone the
// policy — the table is shared and only the state id is copied.
func TestCompiledSetCloneSharesTable(t *testing.T) {
	tab, err := policy.Compile(policy.MustNew("LRU", 4))
	if err != nil {
		t.Fatal(err)
	}
	s := NewSet(tab)
	s.OnEvictAll()
	c := s.Clone()
	if c.tab != s.tab {
		t.Fatal("clone does not share the compiled table")
	}
	before := s.StateKey()
	c.Access("Z9")
	c.Access("Y9")
	if s.StateKey() != before {
		t.Fatal("clone mutation leaked into the original")
	}
}

// OnEvictAll is a tiny test helper: n misses on fresh blocks.
func (s *Set) OnEvictAll() {
	for i := 0; i < s.n; i++ {
		s.Access(blocks.Name(20 + i))
	}
}
