package blocks

import (
	"testing"
	"testing/quick"
)

func TestNameFirst26(t *testing.T) {
	if got := Name(0); got != "A" {
		t.Errorf("Name(0) = %q, want A", got)
	}
	if got := Name(25); got != "Z" {
		t.Errorf("Name(25) = %q, want Z", got)
	}
	if got := Name(26); got != "A1" {
		t.Errorf("Name(26) = %q, want A1", got)
	}
	if got := Name(53); got != "B2" {
		t.Errorf("Name(53) = %q, want B2", got)
	}
}

func TestNameIndexRoundTrip(t *testing.T) {
	f := func(i uint16) bool {
		idx, err := Index(Name(int(i)))
		return err == nil && idx == int(i)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIndexRejectsMalformed(t *testing.T) {
	// "A01" and "A+1" would alias "A1" under a plain Atoi parse, and
	// "A99999999" has an id past MaxIndex (it would overflow the int32 key
	// arithmetic of the store/trie hot paths).
	for _, bad := range []string{"", "a", "1A", "A0", "A-1", "AB", "Ax", "A01", "A+1", "A 1", "A99999999", "A360000000000000000"} {
		if _, err := Index(bad); err == nil {
			t.Errorf("Index(%q) succeeded, want error", bad)
		}
		if IsValid(bad) {
			t.Errorf("IsValid(%q) = true", bad)
		}
	}
}

func TestOrdered(t *testing.T) {
	got := Ordered(4)
	want := []string{"A", "B", "C", "D"}
	if len(got) != len(want) {
		t.Fatalf("Ordered(4) = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Ordered(4)[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestFreshAvoidsTaken(t *testing.T) {
	if got := Fresh(nil); got != "A" {
		t.Errorf("Fresh(nil) = %q, want A", got)
	}
	if got := Fresh([]string{"A", "B", "C"}); got != "D" {
		t.Errorf("Fresh(A B C) = %q, want D", got)
	}
	if got := Fresh([]string{"A", "C"}); got != "B" {
		t.Errorf("Fresh(A C) = %q, want B", got)
	}
}

func TestFreshProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		taken := make([]string, len(raw))
		for i, r := range raw {
			taken[i] = Name(int(r) % 40)
		}
		fresh := Fresh(taken)
		for _, b := range taken {
			if b == fresh {
				return false
			}
		}
		return IsValid(fresh)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestJoin(t *testing.T) {
	if got := Join([]string{"A", "B", "C"}); got != "A B C" {
		t.Errorf("Join = %q", got)
	}
	if got := Join(nil); got != "" {
		t.Errorf("Join(nil) = %q", got)
	}
}
