// Package blocks defines the ordered universe of abstract memory blocks used
// throughout the CacheQuery pipeline.
//
// Abstract blocks are the inputs of the cache model (Definition 2.3 of the
// paper): an infinite, totally ordered set of names A, B, C, ..., Z, A1, B1,
// and so on. The MemBlockLang macros '@' and '_' expand to the first
// associativity-many blocks in this order, and Polca draws fresh blocks from
// the same order when it needs a block that is not currently cached.
package blocks

import (
	"fmt"
	"strconv"
	"strings"
)

// Block is the name of an abstract memory block, e.g. "A" or "C2".
type Block = string

// Name returns the i-th block name (0-based): A..Z, then A1..Z1, A2..Z2, ...
func Name(i int) Block {
	if i < 0 {
		panic(fmt.Sprintf("blocks: negative block index %d", i))
	}
	letter := byte('A' + i%26)
	round := i / 26
	if round == 0 {
		return string(letter)
	}
	return string(letter) + strconv.Itoa(round)
}

// MaxIndex bounds the dense block universe. The universe is conceptually
// infinite, but indices double as hot-path integer keys (trie edges,
// result-store codes), so names beyond the bound are rejected as malformed —
// small enough that id*3+tag arithmetic can never overflow an int32.
const MaxIndex = 1<<25 - 1

// Index returns the 0-based position of a block name in the universe order,
// inverting Name. It reports an error for malformed names: only the
// canonical spelling is accepted ("A1", not "A01" or "A+1" — those would
// silently alias the same block), and only names up to MaxIndex.
func Index(b Block) (int, error) {
	if b == "" {
		return 0, fmt.Errorf("blocks: empty block name")
	}
	letter := b[0]
	if letter < 'A' || letter > 'Z' {
		return 0, fmt.Errorf("blocks: block name %q must start with an upper-case letter", b)
	}
	idx := int(letter - 'A')
	if len(b) == 1 {
		return idx, nil
	}
	round, err := strconv.Atoi(b[1:])
	if err != nil || round <= 0 || strconv.Itoa(round) != b[1:] {
		return 0, fmt.Errorf("blocks: malformed block name %q", b)
	}
	// Bound the round before multiplying: round*26 on a huge round would
	// overflow int and slip past the MaxIndex check as a negative id.
	if round > (MaxIndex-idx)/26 {
		return 0, fmt.Errorf("blocks: block name %q beyond the supported universe of %d blocks", b, MaxIndex+1)
	}
	return round*26 + idx, nil
}

// nameTab caches the first block names so hot paths that address blocks by
// dense universe index (the trie query engine) never re-format a name.
var nameTab = func() []Block {
	t := make([]Block, 256)
	for i := range t {
		t[i] = Name(i)
	}
	return t
}()

// Interned returns Name(i) served from a precomputed table for small i —
// the allocation-free variant used when blocks are handled as dense integer
// ids and a name is needed only at the prober boundary.
func Interned(i int) Block {
	if i >= 0 && i < len(nameTab) {
		return nameTab[i]
	}
	return Name(i)
}

// Ordered returns the first n block names in universe order.
func Ordered(n int) []Block {
	out := make([]Block, n)
	for i := range out {
		out[i] = Name(i)
	}
	return out
}

// Fresh returns the first block in universe order that does not occur in
// taken. It is used by Polca's mapInput to materialize an Evct input as an
// access to a block that is guaranteed to miss.
func Fresh(taken []Block) Block {
	in := make(map[Block]bool, len(taken))
	for _, b := range taken {
		if b != "" {
			in[b] = true
		}
	}
	for i := 0; ; i++ {
		if b := Name(i); !in[b] {
			return b
		}
	}
}

// Join renders a block sequence as a space-separated query string.
func Join(bs []Block) string { return strings.Join(bs, " ") }

// IsValid reports whether b is a well-formed block name.
func IsValid(b Block) bool {
	_, err := Index(b)
	return err == nil
}
