package policy

import "fmt"

// MaxRRPV is the saturation value of the 2-bit re-reference prediction
// values used by the RRIP family (M = 2 in [21]), which is also what the
// paper's simulated SRRIP variants use ("4 ages").
const MaxRRPV = 3

// rripState is the shared control state of the RRIP family: one re-reference
// prediction value (RRPV, or "age") per line. Lines with RRPV 3 are
// predicted to be re-referenced in the distant future and are victims.
type rripState struct {
	n    int
	rrpv []int
}

func newRRIPState(n int) rripState {
	s := rripState{n: n, rrpv: make([]int, n)}
	s.reset()
	return s
}

// reset restores the power-on state: all lines predicted distant (RRPV 3).
// This matches the paper's simulated SRRIP caches — the reachable state
// counts of Table 2 (12/178 for HP, 16/256 for FP at associativities 2/4)
// are reproduced exactly from this initial state, and not from a post-fill
// state.
func (s *rripState) reset() {
	for i := range s.rrpv {
		s.rrpv[i] = MaxRRPV
	}
}

// victim ages all lines until one reaches MaxRRPV and returns the leftmost
// such line. This is the eviction + normalization step of [21].
func (s *rripState) victim() int {
	for {
		for i, a := range s.rrpv {
			if a == MaxRRPV {
				return i
			}
		}
		for i := range s.rrpv {
			s.rrpv[i]++
		}
	}
}

func (s *rripState) clone() rripState {
	c := rripState{n: s.n, rrpv: make([]int, s.n)}
	copy(c.rrpv, s.rrpv)
	return c
}

// SRRIP is Static Re-reference Interval Prediction [21] with 2-bit RRPVs.
// The two hit-promotion variants from the paper are supported: HP (hit
// priority) resets a hit line's RRPV to 0, FP (frequency priority)
// decrements it. Insertions use RRPV 2 (long re-reference interval).
type SRRIP struct {
	s  rripState
	fp bool // frequency-priority hit promotion when true
}

// NewSRRIPHP returns the hit-priority variant.
func NewSRRIPHP(assoc int) *SRRIP { return &SRRIP{s: newRRIPState(assoc)} }

// NewSRRIPFP returns the frequency-priority variant.
func NewSRRIPFP(assoc int) *SRRIP { return &SRRIP{s: newRRIPState(assoc), fp: true} }

func init() {
	Register("SRRIP-HP", func(assoc int) (Policy, error) { return NewSRRIPHP(assoc), nil })
	Register("SRRIP-FP", func(assoc int) (Policy, error) { return NewSRRIPFP(assoc), nil })
}

// Name implements Policy.
func (p *SRRIP) Name() string {
	if p.fp {
		return "SRRIP-FP"
	}
	return "SRRIP-HP"
}

// Assoc implements Policy.
func (p *SRRIP) Assoc() int { return p.s.n }

// OnHit implements Policy.
func (p *SRRIP) OnHit(line int) {
	checkLine(p.s.n, line)
	if p.fp {
		if p.s.rrpv[line] > 0 {
			p.s.rrpv[line]--
		}
	} else {
		p.s.rrpv[line] = 0
	}
}

// OnMiss implements Policy.
func (p *SRRIP) OnMiss() int {
	v := p.s.victim()
	p.s.rrpv[v] = MaxRRPV - 1
	return v
}

// Reset implements Policy.
func (p *SRRIP) Reset() { p.s.reset() }

// StateKey implements Policy.
func (p *SRRIP) StateKey() string { return agesKey(p.s.rrpv) }

// Clone implements Policy.
func (p *SRRIP) Clone() Policy { return &SRRIP{s: p.s.clone(), fp: p.fp} }

// DefaultBRRIPEpsilon is BRRIP's bimodal throttle: one in every 32
// insertions uses the long (RRPV 2) interval, the rest the distant (RRPV 3)
// interval, as in [21].
const DefaultBRRIPEpsilon = 32

// BRRIP is Bimodal RRIP [21], the thrash-resistant dueling partner of SRRIP
// in DRRIP. Insertions normally use the distant RRPV 3 so that streaming
// blocks are evicted immediately; every epsilon-th insertion uses RRPV 2.
// As with BIP, the original random throttle is made deterministic with a
// modulo counter that is part of the control state.
type BRRIP struct {
	s       rripState
	epsilon int
	ctr     int
}

// NewBRRIP returns a BRRIP policy with hit-priority promotion.
func NewBRRIP(assoc, epsilon int) (*BRRIP, error) {
	if epsilon < 1 {
		return nil, fmt.Errorf("policy: BRRIP epsilon must be >= 1, got %d", epsilon)
	}
	return &BRRIP{s: newRRIPState(assoc), epsilon: epsilon}, nil
}

func init() {
	Register("BRRIP", func(assoc int) (Policy, error) { return NewBRRIP(assoc, DefaultBRRIPEpsilon) })
}

// Name implements Policy.
func (p *BRRIP) Name() string { return "BRRIP" }

// Assoc implements Policy.
func (p *BRRIP) Assoc() int { return p.s.n }

// OnHit implements Policy.
func (p *BRRIP) OnHit(line int) {
	checkLine(p.s.n, line)
	p.s.rrpv[line] = 0
}

// OnMiss implements Policy.
func (p *BRRIP) OnMiss() int {
	v := p.s.victim()
	if p.ctr == 0 {
		p.s.rrpv[v] = MaxRRPV - 1
	} else {
		p.s.rrpv[v] = MaxRRPV
	}
	p.ctr = (p.ctr + 1) % p.epsilon
	return v
}

// Reset implements Policy.
func (p *BRRIP) Reset() { p.s.reset(); p.ctr = 0 }

// StateKey implements Policy.
func (p *BRRIP) StateKey() string { return fmt.Sprintf("%s c=%d", agesKey(p.s.rrpv), p.ctr) }

// Clone implements Policy.
func (p *BRRIP) Clone() Policy {
	return &BRRIP{s: p.s.clone(), epsilon: p.epsilon, ctr: p.ctr}
}
