package policy

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// allPolicies instantiates every deterministic registered policy at the
// given associativity (skipping those with associativity constraints).
func allPolicies(t *testing.T, assoc int) []Policy {
	t.Helper()
	var out []Policy
	for _, name := range Names() {
		p, err := New(name, assoc)
		if err != nil {
			if strings.EqualFold(name, "plru") {
				continue // associativity constraint, tested separately
			}
			t.Fatalf("New(%s, %d): %v", name, assoc, err)
		}
		out = append(out, p)
	}
	return out
}

func TestRegistry(t *testing.T) {
	want := []string{"bip", "brrip", "fifo", "lip", "lru", "mru", "new1", "new2", "plru", "srrip-fp", "srrip-hp"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Names()[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	if _, err := New("nope", 4); err == nil {
		t.Error("New(nope) succeeded")
	}
	if _, err := New("lru", 0); err == nil {
		t.Error("New(lru, 0) succeeded")
	}
	if p, err := New("LRU", 4); err != nil || p == nil {
		t.Error("registry lookup is not case-insensitive")
	}
	if MustNew("Lru", 4) == nil {
		t.Error("MustNew failed for mixed-case name")
	}
}

// TestRegisterErrorPaths covers the registry's failure modes table-driven:
// duplicate registration (same case and different case) must fail loudly
// with a panic naming the policy, and lookups must reject unknown names and
// invalid associativities with errors that name the problem.
func TestRegisterErrorPaths(t *testing.T) {
	dups := []struct {
		name string
		reg  string // the colliding registration spelling
	}{
		{"exact duplicate", "LRU"},
		{"lower-case duplicate", "lru"},
		{"mixed-case duplicate", "lRu"},
	}
	for _, c := range dups {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("Register(%q) of an existing policy did not panic", c.reg)
				}
				if msg, ok := r.(string); !ok || !strings.Contains(msg, c.reg) {
					t.Fatalf("duplicate-registration panic %v does not name the policy %q", r, c.reg)
				}
			}()
			Register(c.reg, func(assoc int) (Policy, error) { return NewLRU(assoc), nil })
		})
	}

	lookups := []struct {
		name    string
		policy  string
		assoc   int
		wantErr string
	}{
		{"unknown name", "clock", 4, `unknown policy "clock"`},
		{"empty name", "", 4, "unknown policy"},
		{"zero associativity", "LRU", 0, "associativity must be >= 1"},
		{"negative associativity", "LRU", -3, "associativity must be >= 1"},
		{"constructor constraint", "PLRU", 6, "power of two"},
	}
	for _, c := range lookups {
		t.Run(c.name, func(t *testing.T) {
			p, err := New(c.policy, c.assoc)
			if err == nil {
				t.Fatalf("New(%q, %d) = %v, want error", c.policy, c.assoc, p)
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("New(%q, %d) error %q does not contain %q", c.policy, c.assoc, err, c.wantErr)
			}
		})
	}

	// The unknown-name error lists the registry so typos are self-serviceable.
	_, err := New("lru2", 4)
	if err == nil || !strings.Contains(err.Error(), "lru") || !strings.Contains(err.Error(), "srrip-hp") {
		t.Fatalf("unknown-name error %q does not list the known policies", err)
	}
}

func TestInputOutputStrings(t *testing.T) {
	if got := InputString(4, 2); got != "Ln(2)" {
		t.Errorf("InputString = %q", got)
	}
	if got := InputString(4, 4); got != "Evct" {
		t.Errorf("InputString(Evct) = %q", got)
	}
	if got := OutputString(Bottom); got != "⊥" {
		t.Errorf("OutputString(⊥) = %q", got)
	}
	if got := OutputString(3); got != "3" {
		t.Errorf("OutputString(3) = %q", got)
	}
}

// TestDeterminism: equal control states react identically to every input
// word. This is the assumption the whole learning pipeline rests on.
func TestDeterminism(t *testing.T) {
	for _, p := range allPolicies(t, 4) {
		p := p
		t.Run(p.Name(), func(t *testing.T) {
			f := func(raw []uint8) bool {
				a, b := p.Clone(), p.Clone()
				a.Reset()
				b.Reset()
				for _, r := range raw {
					in := int(r) % NumInputs(4)
					if Apply(a, in) != Apply(b, in) {
						return false
					}
					if a.StateKey() != b.StateKey() {
						return false
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestCloneIndependence: mutating a clone must not affect the original.
func TestCloneIndependence(t *testing.T) {
	for _, p := range allPolicies(t, 4) {
		p.Reset()
		before := p.StateKey()
		c := p.Clone()
		for i := 0; i < 10; i++ {
			c.OnMiss()
			c.OnHit(i % 4)
		}
		if p.StateKey() != before {
			t.Errorf("%s: clone mutation leaked into original", p.Name())
		}
	}
}

// TestResetReproducible: Reset always lands in the same control state.
func TestResetReproducible(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, p := range allPolicies(t, 4) {
		p.Reset()
		initial := p.StateKey()
		for i := 0; i < 25; i++ {
			Apply(p, rng.Intn(NumInputs(4)))
		}
		p.Reset()
		if p.StateKey() != initial {
			t.Errorf("%s: Reset not reproducible: %s vs %s", p.Name(), p.StateKey(), initial)
		}
	}
}

// TestEvictOutputsInRange: Evct must output a line in 0..n-1 (Def 2.1a).
func TestEvictOutputsInRange(t *testing.T) {
	for _, assoc := range []int{2, 4, 8} {
		for _, p := range allPolicies(t, assoc) {
			rng := rand.New(rand.NewSource(7))
			for i := 0; i < 200; i++ {
				if rng.Intn(2) == 0 {
					p.OnHit(rng.Intn(assoc))
				} else if v := p.OnMiss(); v < 0 || v >= assoc {
					t.Fatalf("%s assoc %d: OnMiss returned %d", p.Name(), assoc, v)
				}
			}
		}
	}
}

func TestFIFOBehaviour(t *testing.T) {
	p := NewFIFO(4)
	// Hits never change the eviction order.
	p.OnHit(3)
	p.OnHit(2)
	for want := 0; want < 4; want++ {
		if got := p.OnMiss(); got != want {
			t.Errorf("FIFO eviction %d: got line %d", want, got)
		}
	}
	if got := p.OnMiss(); got != 0 {
		t.Errorf("FIFO wrap-around: got %d, want 0", got)
	}
}

func TestLRUBehaviour(t *testing.T) {
	p := NewLRU(4)
	// After the initial fill, line 0 is least recently used.
	if got := p.OnMiss(); got != 0 {
		t.Fatalf("first LRU eviction: got %d, want 0", got)
	}
	// Touch line 1; the next victims are 2, 3, then 1... no: after
	// evicting 0 the inserted block is MRU, so order is 1,2,3. Touching 1
	// makes the order 2,3,0(new),1.
	p.OnHit(1)
	if got := p.OnMiss(); got != 2 {
		t.Errorf("eviction after touch: got %d, want 2", got)
	}
	if got := p.OnMiss(); got != 3 {
		t.Errorf("next eviction: got %d, want 3", got)
	}
}

func TestLIPKeepsVictimUntilHit(t *testing.T) {
	p := NewLIP(4)
	v := p.OnMiss()
	for i := 0; i < 5; i++ {
		if got := p.OnMiss(); got != v {
			t.Fatalf("LIP victim changed from %d to %d without a hit", v, got)
		}
	}
	p.OnHit(v) // promote: some other line becomes LRU
	if got := p.OnMiss(); got == v {
		t.Errorf("LIP victim unchanged after promotion of line %d", v)
	}
}

func TestBIPEpsilonOneIsLRU(t *testing.T) {
	b, err := NewBIP(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	l := NewLRU(4)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		in := rng.Intn(NumInputs(4))
		if Apply(b, in) != Apply(l, in) {
			t.Fatalf("BIP(eps=1) diverged from LRU at step %d", i)
		}
	}
}

func TestBIPRejectsBadEpsilon(t *testing.T) {
	if _, err := NewBIP(4, 0); err == nil {
		t.Error("NewBIP(4, 0) succeeded")
	}
	if _, err := NewBRRIP(4, 0); err == nil {
		t.Error("NewBRRIP(4, 0) succeeded")
	}
}

func TestPLRURejectsNonPowerOfTwo(t *testing.T) {
	for _, bad := range []int{1, 3, 6, 12} {
		if _, err := NewPLRU(bad); err == nil {
			t.Errorf("NewPLRU(%d) succeeded", bad)
		}
	}
}

func TestPLRUAssocTwoTracksLastAccess(t *testing.T) {
	// With two ways, PLRU is exactly LRU: the victim is the line not
	// accessed most recently.
	p, err := NewPLRU(2)
	if err != nil {
		t.Fatal(err)
	}
	p.OnHit(0)
	if got := p.OnMiss(); got != 1 {
		t.Errorf("victim after touching 0: got %d, want 1", got)
	}
	// The miss inserted into line 1 and touched it; victim is now 0.
	if got := p.OnMiss(); got != 0 {
		t.Errorf("next victim: got %d, want 0", got)
	}
}

func TestMRUBitsInvariant(t *testing.T) {
	p := NewMRU(6)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 2000; i++ {
		Apply(p, rng.Intn(NumInputs(6)))
		key := p.StateKey()
		if !strings.Contains(key, "0") || !strings.Contains(key, "1") {
			t.Fatalf("MRU state %q is saturated between accesses", key)
		}
	}
}

func TestSRRIPInsertionAndPromotion(t *testing.T) {
	hp := NewSRRIPHP(4)
	// Power-on: all RRPV 3; the first victim is line 0, inserted at 2.
	if got := hp.OnMiss(); got != 0 {
		t.Fatalf("first SRRIP victim: got %d, want 0", got)
	}
	if key := hp.StateKey(); key != "[2 3 3 3]" {
		t.Errorf("state after first miss: %s, want [2 3 3 3]", key)
	}
	hp.OnHit(0)
	if key := hp.StateKey(); key != "[0 3 3 3]" {
		t.Errorf("HP promotion: %s, want [0 3 3 3]", key)
	}

	fp := NewSRRIPFP(4)
	fp.OnMiss()
	fp.OnHit(0)
	if key := fp.StateKey(); key != "[1 3 3 3]" {
		t.Errorf("FP promotion: %s, want [1 3 3 3]", key)
	}
	fp.OnHit(0)
	fp.OnHit(0) // saturates at 0
	if key := fp.StateKey(); key != "[0 3 3 3]" {
		t.Errorf("FP saturation: %s, want [0 3 3 3]", key)
	}
}

func TestNew1MatchesPaperDescription(t *testing.T) {
	// From the fill state, hitting the youngest line must reach the
	// paper's initial control state {3,3,3,0} (§8).
	p := NewNew1(4)
	if key := p.StateKey(); key != "[3 3 3 1]" {
		t.Fatalf("New1 fill state: %s, want [3 3 3 1]", key)
	}
	p.OnHit(3)
	if key := p.StateKey(); key != "[3 3 3 0]" {
		t.Errorf("New1 after hit on line 3: %s, want the paper's s0 [3 3 3 0]", key)
	}
	// Eviction picks the leftmost distant line and inserts at age 1.
	if got := p.OnMiss(); got != 0 {
		t.Errorf("New1 eviction: got line %d, want 0", got)
	}
	if key := p.StateKey(); key != "[1 3 3 0]" {
		t.Errorf("New1 after miss: %s, want [1 3 3 0]", key)
	}
}

func TestNew2MatchesPaperDescription(t *testing.T) {
	p := NewNew2(4)
	// The fill converges to the paper's initial control state {3,3,3,3}:
	// the last insert leaves no distant line, so global normalization ages
	// everything back to 3.
	if key := p.StateKey(); key != "[3 3 3 3]" {
		t.Fatalf("New2 fill state: %s, want the paper's s0 [3 3 3 3]", key)
	}
	// Promotion: age 3 -> 1 (the "otherwise" branch).
	p.OnHit(0)
	if key := p.StateKey(); key != "[1 3 3 3]" {
		t.Errorf("New2 hit on age-3 line: %s, want [1 3 3 3]", key)
	}
	// Promotion: age 1 -> 0.
	p.OnHit(0)
	if key := p.StateKey(); key != "[0 3 3 3]" {
		t.Errorf("New2 hit on age-1 line: %s, want [0 3 3 3]", key)
	}
	// Two misses consume the distant lines 1 and 2.
	if v := p.OnMiss(); v != 1 {
		t.Errorf("New2 eviction: line %d, want 1", v)
	}
	p.OnMiss()
	if key := p.StateKey(); key != "[0 1 1 3]" {
		t.Errorf("New2 after two misses: %s, want [0 1 1 3]", key)
	}
	// Promoting the only distant line triggers global normalization,
	// which also ages the just-promoted line.
	p.OnHit(3)
	if key := p.StateKey(); key != "[2 3 3 3]" {
		t.Errorf("New2 hit on distant line: %s, want [2 3 3 3]", key)
	}
}

func TestAgesStayBounded(t *testing.T) {
	for _, name := range []string{"New1", "New2", "SRRIP-HP", "SRRIP-FP"} {
		p := MustNew(name, 4)
		rng := rand.New(rand.NewSource(5))
		for i := 0; i < 2000; i++ {
			Apply(p, rng.Intn(NumInputs(4)))
			key := p.StateKey()
			for _, c := range key {
				if c >= '4' && c <= '9' {
					t.Fatalf("%s: age out of 0..3 range in state %s", name, key)
				}
			}
		}
	}
}

func TestRandomPolicyIsNondeterministic(t *testing.T) {
	p := NewRandom(4, 42)
	seen := make(map[int]bool)
	for i := 0; i < 100; i++ {
		p.Reset()
		seen[p.OnMiss()] = true
	}
	if len(seen) < 2 {
		t.Errorf("Random policy evicted only %v across resets", seen)
	}
}
