package policy

import (
	"math/rand"
	"testing"
)

// mustTable compiles a named policy or fails the test.
func mustTable(t *testing.T, name string, assoc int) *Table {
	t.Helper()
	tab, err := Compile(MustNew(name, assoc))
	if err != nil {
		t.Fatalf("compile %s-%d: %v", name, assoc, err)
	}
	return tab
}

// TestStepBatchMatchesStep drives a vector of states through a random
// input word and checks every lane against scalar Step calls — StepBatch
// and StepBatchOut are pure reshapes of the same transition arrays.
func TestStepBatchMatchesStep(t *testing.T) {
	for _, c := range []struct {
		name  string
		assoc int
	}{{"LRU", 4}, {"PLRU", 8}, {"SRRIP-HP", 4}, {"New1", 4}} {
		t.Run(c.name, func(t *testing.T) {
			tab := mustTable(t, c.name, c.assoc)
			rng := rand.New(rand.NewSource(7))
			const lanes = 37
			batch := make([]int32, lanes)
			outs := make([]int32, lanes)
			scalar := make([]int32, lanes)
			for l := range batch {
				// Scatter the lanes before stepping so the vector is not
				// uniformly at the initial state.
				s := tab.InitState()
				for k := rng.Intn(6); k > 0; k-- {
					s, _ = tab.Step(s, rng.Intn(tab.NumInputs()))
				}
				batch[l], scalar[l] = s, s
			}
			for step := 0; step < 40; step++ {
				in := rng.Intn(tab.NumInputs())
				tab.StepBatchOut(batch, int32(in), outs)
				for l := range scalar {
					next, out := tab.Step(scalar[l], in)
					scalar[l] = next
					if batch[l] != next || outs[l] != out {
						t.Fatalf("step %d lane %d input %d: batch (%d, %d), scalar (%d, %d)",
							step, l, in, batch[l], outs[l], next, out)
					}
				}
				// StepBatch (no outputs) must advance identically.
				cp := append([]int32(nil), scalar...)
				tab.StepBatch(cp, int32(in))
				for l := range cp {
					want, _ := tab.Step(scalar[l], in)
					if cp[l] != want {
						t.Fatalf("StepBatch diverged at lane %d", l)
					}
				}
			}
		})
	}
}

// TestBatchAccessLaneMatchesApply runs full cache semantics on one batch
// lane against the interpreted policy applied to a tracked content tuple.
func TestBatchAccessLaneMatchesApply(t *testing.T) {
	for _, c := range []struct {
		name  string
		assoc int
	}{{"LRU", 4}, {"MRU", 4}, {"SRRIP-FP", 4}} {
		t.Run(c.name, func(t *testing.T) {
			tab := mustTable(t, c.name, c.assoc)
			cc0 := make([]int32, c.assoc)
			for i := range cc0 {
				cc0[i] = int32(i)
			}
			b := NewBatch(tab, 3, cc0)
			pol := MustNew(c.name, c.assoc)
			content := append([]int32(nil), cc0...)
			rng := rand.New(rand.NewSource(11))
			for step := 0; step < 200; step++ {
				id := int32(rng.Intn(c.assoc + 3)) // mix residents and misses
				wantHit := -1
				for i, cb := range content {
					if cb == id {
						wantHit = i
						break
					}
				}
				var wantVictim = -1
				if wantHit >= 0 {
					pol.OnHit(wantHit)
				} else {
					ev := pol.OnMiss()
					wantVictim = ev
					content[ev] = id
				}
				hit, victim := b.AccessLane(1, id)
				if hit != wantHit || victim != wantVictim {
					t.Fatalf("step %d id %d: lane (%d, %d), interpreted (%d, %d)",
						step, id, hit, victim, wantHit, wantVictim)
				}
				if got := b.Scan(1, id); (wantHit >= 0 && got != wantHit) || (wantHit < 0 && got != wantVictim) {
					t.Fatalf("step %d: Scan(%d) = %d after access", step, id, got)
				}
			}
			// Untouched lanes stayed at the reset state.
			for _, l := range []int{0, 2} {
				if b.State(l) != tab.InitState() {
					t.Errorf("lane %d state moved to %d", l, b.State(l))
				}
				for i, cb := range b.Row(l) {
					if cb != cc0[i] {
						t.Errorf("lane %d content[%d] = %d, want %d", l, i, cb, cc0[i])
					}
				}
			}
		})
	}
}

// TestBatchLaneOps covers the lane plumbing the polca batch planner leans
// on: LoadLane, CopyLane, ResetLane and Row aliasing.
func TestBatchLaneOps(t *testing.T) {
	tab := mustTable(t, "LRU", 4)
	cc0 := []int32{0, 1, 2, 3}
	b := NewBatch(tab, 4, cc0)
	if b.Lanes() != 4 || b.Table() != tab {
		t.Fatalf("block shape wrong: %d lanes", b.Lanes())
	}
	// Drive lane 0 somewhere, fork it into lane 2, and check independence.
	b.AccessLane(0, 9)
	b.AccessLane(0, 1)
	b.CopyLane(2, 0)
	if b.State(2) != b.State(0) {
		t.Fatal("CopyLane did not copy the state")
	}
	b.AccessLane(2, 11)
	if b.Scan(0, 11) >= 0 {
		t.Fatal("lane 2 access leaked into lane 0's row")
	}
	// LoadLane round-trips an arbitrary position; Row aliases the matrix.
	row := append([]int32(nil), b.Row(2)...)
	st := b.State(2)
	b.ResetLane(2)
	if b.State(2) != tab.InitState() || b.Scan(2, 11) >= 0 {
		t.Fatal("ResetLane did not rewind lane 2")
	}
	b.LoadLane(2, st, row)
	if b.State(2) != st || b.Scan(2, 11) < 0 {
		t.Fatal("LoadLane did not restore the forked position")
	}
	b.Row(3)[0] = 42
	if b.Scan(3, 42) != 0 {
		t.Fatal("Row does not alias the content matrix")
	}
	// States exposes the contiguous vector StepRun slices into.
	outs := make([]int32, 4)
	states := append([]int32(nil), b.States()...)
	b.StepRun(1, 3, 4, outs) // miss symbol for assoc 4
	for l := 0; l < 4; l++ {
		want := states[l]
		if l >= 1 && l < 3 {
			want, _ = tab.Step(states[l], 4)
		}
		if b.State(l) != want {
			t.Fatalf("StepRun touched the wrong lanes: lane %d state %d, want %d", l, b.State(l), want)
		}
	}
}
