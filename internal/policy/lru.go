package policy

import "fmt"

// recencyStack is the shared control state of the stack-based policies LRU,
// LIP and BIP: ages[i] is the recency rank of line i, where 0 is the most
// recently used line and n-1 the least recently used one. The ages always
// form a permutation of 0..n-1.
type recencyStack struct {
	n    int
	ages []int
}

func newRecencyStack(n int) recencyStack {
	s := recencyStack{n: n, ages: make([]int, n)}
	s.reset()
	return s
}

// reset restores the state after the initial fill A, B, ..., i.e. line 0 was
// inserted first and is the least recently used line (age n-1).
func (s *recencyStack) reset() {
	for i := range s.ages {
		s.ages[i] = s.n - 1 - i
	}
}

// promote makes line the most recently used one, aging every line that was
// more recent than it.
func (s *recencyStack) promote(line int) {
	old := s.ages[line]
	for j := range s.ages {
		if s.ages[j] < old {
			s.ages[j]++
		}
	}
	s.ages[line] = 0
}

// lruVictim returns the least recently used line.
func (s *recencyStack) lruVictim() int {
	for j, a := range s.ages {
		if a == s.n-1 {
			return j
		}
	}
	panic("policy: recency stack invariant violated")
}

func (s *recencyStack) clone() recencyStack {
	c := recencyStack{n: s.n, ages: make([]int, s.n)}
	copy(c.ages, s.ages)
	return c
}

// LRU is the Least Recently Used policy: the line whose last access is the
// furthest in the past is evicted; both hits and insertions move a line to
// the most recently used position. Its control states are the n! recency
// permutations.
type LRU struct{ s recencyStack }

// NewLRU returns an LRU policy of the given associativity.
func NewLRU(assoc int) *LRU { return &LRU{s: newRecencyStack(assoc)} }

func init() {
	Register("LRU", func(assoc int) (Policy, error) { return NewLRU(assoc), nil })
}

// Name implements Policy.
func (p *LRU) Name() string { return "LRU" }

// Assoc implements Policy.
func (p *LRU) Assoc() int { return p.s.n }

// OnHit implements Policy.
func (p *LRU) OnHit(line int) { checkLine(p.s.n, line); p.s.promote(line) }

// OnMiss implements Policy. The LRU line is freed and the incoming block is
// inserted at the most recently used position.
func (p *LRU) OnMiss() int {
	v := p.s.lruVictim()
	p.s.promote(v)
	return v
}

// Reset implements Policy.
func (p *LRU) Reset() { p.s.reset() }

// StateKey implements Policy.
func (p *LRU) StateKey() string { return agesKey(p.s.ages) }

// Clone implements Policy.
func (p *LRU) Clone() Policy { return &LRU{s: p.s.clone()} }

// LIP is the LRU Insertion Policy of Qureshi et al. [31]: eviction and hit
// promotion behave like LRU, but a newly inserted block stays at the LRU
// position, so it is the next victim unless it is reused first. LIP protects
// the cache against thrashing workloads.
type LIP struct{ s recencyStack }

// NewLIP returns a LIP policy of the given associativity.
func NewLIP(assoc int) *LIP { return &LIP{s: newRecencyStack(assoc)} }

func init() {
	Register("LIP", func(assoc int) (Policy, error) { return NewLIP(assoc), nil })
}

// Name implements Policy.
func (p *LIP) Name() string { return "LIP" }

// Assoc implements Policy.
func (p *LIP) Assoc() int { return p.s.n }

// OnHit implements Policy.
func (p *LIP) OnHit(line int) { checkLine(p.s.n, line); p.s.promote(line) }

// OnMiss implements Policy. The LRU line is replaced in place: the new block
// keeps age n-1.
func (p *LIP) OnMiss() int { return p.s.lruVictim() }

// Reset implements Policy.
func (p *LIP) Reset() { p.s.reset() }

// StateKey implements Policy.
func (p *LIP) StateKey() string { return agesKey(p.s.ages) }

// Clone implements Policy.
func (p *LIP) Clone() Policy { return &LIP{s: p.s.clone()} }

// DefaultBIPEpsilon is the bimodal throttle used by BIP when none is given:
// one in every 32 insertions goes to the MRU position, as in [31].
const DefaultBIPEpsilon = 32

// BIP is the Bimodal Insertion Policy of Qureshi et al. [31]: it behaves
// like LIP except that every epsilon-th insertion is placed at the MRU
// position instead. The original proposal throttles randomly; this
// implementation uses a deterministic modulo counter so the policy remains a
// finite deterministic Mealy machine (the counter is part of the control
// state).
type BIP struct {
	s       recencyStack
	epsilon int
	ctr     int
}

// NewBIP returns a BIP policy with the given associativity and throttle.
// epsilon must be >= 1; epsilon == 1 degenerates to LRU insertion.
func NewBIP(assoc, epsilon int) (*BIP, error) {
	if epsilon < 1 {
		return nil, fmt.Errorf("policy: BIP epsilon must be >= 1, got %d", epsilon)
	}
	return &BIP{s: newRecencyStack(assoc), epsilon: epsilon}, nil
}

func init() {
	Register("BIP", func(assoc int) (Policy, error) { return NewBIP(assoc, DefaultBIPEpsilon) })
}

// Name implements Policy.
func (p *BIP) Name() string { return "BIP" }

// Assoc implements Policy.
func (p *BIP) Assoc() int { return p.s.n }

// OnHit implements Policy.
func (p *BIP) OnHit(line int) { checkLine(p.s.n, line); p.s.promote(line) }

// OnMiss implements Policy.
func (p *BIP) OnMiss() int {
	v := p.s.lruVictim()
	if p.ctr == 0 {
		p.s.promote(v) // the rare MRU insertion
	}
	p.ctr = (p.ctr + 1) % p.epsilon
	return v
}

// Reset implements Policy.
func (p *BIP) Reset() { p.s.reset(); p.ctr = 0 }

// StateKey implements Policy.
func (p *BIP) StateKey() string { return fmt.Sprintf("%s c=%d", agesKey(p.s.ages), p.ctr) }

// Clone implements Policy.
func (p *BIP) Clone() Policy {
	return &BIP{s: p.s.clone(), epsilon: p.epsilon, ctr: p.ctr}
}
