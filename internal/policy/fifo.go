package policy

import "fmt"

// FIFO evicts cache lines in round-robin insertion order. Hits do not change
// the control state, so the policy has exactly n control states: the index of
// the next victim line.
type FIFO struct {
	n    int
	next int
}

// NewFIFO returns a FIFO policy of the given associativity.
func NewFIFO(assoc int) *FIFO { return &FIFO{n: assoc} }

func init() {
	Register("FIFO", func(assoc int) (Policy, error) { return NewFIFO(assoc), nil })
}

// Name implements Policy.
func (p *FIFO) Name() string { return "FIFO" }

// Assoc implements Policy.
func (p *FIFO) Assoc() int { return p.n }

// OnHit implements Policy. FIFO ignores hits.
func (p *FIFO) OnHit(line int) { checkLine(p.n, line) }

// OnMiss implements Policy. It frees the oldest line and advances the
// insertion pointer.
func (p *FIFO) OnMiss() int {
	v := p.next
	p.next = (p.next + 1) % p.n
	return v
}

// Reset implements Policy.
func (p *FIFO) Reset() { p.next = 0 }

// StateKey implements Policy.
func (p *FIFO) StateKey() string { return fmt.Sprintf("next=%d", p.next) }

// Clone implements Policy.
func (p *FIFO) Clone() Policy { c := *p; return &c }
