// Package policy implements deterministic cache replacement policies as
// Mealy machines, following Definition 2.1 of the CacheQuery paper.
//
// A replacement policy of associativity n accepts the inputs Ln(0), ...,
// Ln(n-1) (a hit on cache line i) and Evct (a request to free a line). On
// Ln(i) it outputs ⊥ and only updates its control state; on Evct it outputs
// the index of the line to be freed. The package provides an imperative
// interface (OnHit/OnMiss) plus the canonical state encoding (StateKey) that
// lets internal/mealy extract the explicit Mealy machine by exhaustive
// state-space exploration.
//
// The zoo covers every policy used in the paper's evaluation: FIFO, LRU,
// PLRU, MRU, LIP, SRRIP-HP, SRRIP-FP (§6), and the two previously
// undocumented Intel policies New1 and New2 (§8), plus BIP and BRRIP which
// the simulated adaptive last-level cache (Appendix B) uses as its
// thrash-resistant dueling candidates.
package policy

import (
	"fmt"
	"sort"
	"strings"
)

// Bottom is the policy output ⊥ produced by every Ln(i) input.
const Bottom = -1

// Policy is a deterministic replacement policy for a single cache set.
//
// Implementations must be deterministic: two policies with equal StateKey
// react identically to every input. Clone must return an independent deep
// copy, and Reset must restore the initial control state cs0.
type Policy interface {
	// Name returns the canonical policy name, e.g. "LRU" or "SRRIP-HP".
	Name() string
	// Assoc returns the associativity n the policy instance was built for.
	Assoc() int
	// OnHit processes input Ln(line). The output is always ⊥.
	OnHit(line int)
	// OnMiss processes input Evct and returns the index of the freed line.
	OnMiss() int
	// Reset restores the initial control state cs0.
	Reset()
	// StateKey returns a canonical encoding of the current control state.
	StateKey() string
	// Clone returns an independent copy in the same control state.
	Clone() Policy
}

// EvctInput returns the integer encoding of the Evct input for associativity
// n. Inputs 0..n-1 encode Ln(0)..Ln(n-1); input n encodes Evct.
func EvctInput(n int) int { return n }

// NumInputs returns the size of the policy input alphabet for associativity n.
func NumInputs(n int) int { return n + 1 }

// InputString renders an encoded policy input (see EvctInput) for display.
func InputString(n, in int) string {
	if in == n {
		return "Evct"
	}
	return fmt.Sprintf("Ln(%d)", in)
}

// OutputString renders an encoded policy output for display.
func OutputString(out int) string {
	if out == Bottom {
		return "⊥"
	}
	return fmt.Sprintf("%d", out)
}

// Apply feeds one encoded input to p and returns the encoded output.
func Apply(p Policy, in int) int {
	if in == p.Assoc() {
		return p.OnMiss()
	}
	p.OnHit(in)
	return Bottom
}

// Factory builds a policy instance of a given associativity.
type Factory func(assoc int) (Policy, error)

var registry = map[string]Factory{}

// Register adds a named policy constructor to the global registry. It is
// called from the init functions of the concrete policies and panics on
// duplicate names; names are case-insensitive.
func Register(name string, f Factory) {
	key := strings.ToLower(name)
	if _, dup := registry[key]; dup {
		panic("policy: duplicate registration of " + name)
	}
	registry[key] = f
}

// New builds a registered policy by name (case-insensitive).
func New(name string, assoc int) (Policy, error) {
	f, ok := registry[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("policy: unknown policy %q (known: %s)", name, strings.Join(Names(), ", "))
	}
	if assoc < 1 {
		return nil, fmt.Errorf("policy: associativity must be >= 1, got %d", assoc)
	}
	return f(assoc)
}

// MustNew is New for known-good arguments; it panics on error.
func MustNew(name string, assoc int) Policy {
	p, err := New(name, assoc)
	if err != nil {
		panic(err)
	}
	return p
}

// Names returns the sorted list of registered policy names.
func Names() []string {
	out := make([]string, 0, len(registry))
	for k := range registry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// agesKey encodes an int slice control state canonically, e.g. "[3 1 0 2]".
func agesKey(ages []int) string {
	var sb strings.Builder
	sb.WriteByte('[')
	for i, a := range ages {
		if i > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%d", a)
	}
	sb.WriteByte(']')
	return sb.String()
}

func checkLine(n, line int) {
	if line < 0 || line >= n {
		panic(fmt.Sprintf("policy: line %d out of range for associativity %d", line, n))
	}
}
