package policy

import (
	"fmt"
	"math/bits"
	"strings"
)

// PLRU is the tree-based Pseudo-LRU policy [15]. The associativity must be a
// power of two; the control state is a complete binary tree of n-1 direction
// bits stored heap-style (node 1 is the root, node v has children 2v and
// 2v+1). Bit 0 at a node means "the next victim is in the left subtree".
// On every access the bits along the accessed line's root path are set to
// point away from it. The policy has 2^(n-1) control states.
//
// This is the policy the paper learns on the L1 caches of all three Intel
// CPUs and on Haswell's L2 (Table 4).
type PLRU struct {
	n     int
	tree  []uint8 // tree[1..n-1]; index 0 unused
	depth int
}

// NewPLRU returns a PLRU policy; assoc must be a power of two >= 2.
func NewPLRU(assoc int) (*PLRU, error) {
	if assoc < 2 || bits.OnesCount(uint(assoc)) != 1 {
		return nil, fmt.Errorf("policy: PLRU associativity must be a power of two >= 2, got %d", assoc)
	}
	p := &PLRU{n: assoc, tree: make([]uint8, assoc), depth: bits.TrailingZeros(uint(assoc))}
	p.Reset()
	return p, nil
}

func init() {
	Register("PLRU", func(assoc int) (Policy, error) { return NewPLRU(assoc) })
}

// Name implements Policy.
func (p *PLRU) Name() string { return "PLRU" }

// Assoc implements Policy.
func (p *PLRU) Assoc() int { return p.n }

// touch flips the root-path bits of line so they point away from it.
func (p *PLRU) touch(line int) {
	node := 1
	for level := p.depth - 1; level >= 0; level-- {
		dir := (line >> level) & 1 // 0: line lives in the left subtree
		p.tree[node] = uint8(1 - dir)
		node = node<<1 | dir
	}
}

// OnHit implements Policy.
func (p *PLRU) OnHit(line int) {
	checkLine(p.n, line)
	p.touch(line)
}

// OnMiss implements Policy. The victim is found by following the direction
// bits from the root; the inserted block is then touched like a hit.
func (p *PLRU) OnMiss() int {
	node := 1
	for node < p.n {
		node = node<<1 | int(p.tree[node])
	}
	victim := node - p.n
	p.touch(victim)
	return victim
}

// Reset implements Policy. The initial state is the one reached after
// filling the set with accesses to lines 0..n-1 in order, mirroring the '@'
// reset fill used by CacheQuery.
func (p *PLRU) Reset() {
	for i := range p.tree {
		p.tree[i] = 0
	}
	for i := 0; i < p.n; i++ {
		p.touch(i)
	}
}

// StateKey implements Policy.
func (p *PLRU) StateKey() string {
	var sb strings.Builder
	for _, b := range p.tree[1:] {
		sb.WriteByte('0' + b)
	}
	return sb.String()
}

// Clone implements Policy.
func (p *PLRU) Clone() Policy {
	c := &PLRU{n: p.n, tree: make([]uint8, len(p.tree)), depth: p.depth}
	copy(c.tree, p.tree)
	return c
}
