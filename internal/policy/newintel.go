package policy

// This file implements the two previously undocumented Intel replacement
// policies that the paper learned from silicon and explained by synthesis
// (§8). Both are SRRIP-HP-like age policies over 2-bit ages; the salient
// difference from SRRIP is that the aging ("normalization") step runs after
// every hit and miss rather than only before a miss.
//
// New1 (Skylake/Kaby Lake L2, 160 states at associativity 4):
//   - Promote: set the accessed line's age to 0.
//   - Evict:   the first line from the left whose age is 3.
//   - Insert:  set the evicted line's age to 1.
//   - Normalize (after hit and miss): while no line has age 3, increase the
//     age of every line by 1 except the just accessed/evicted line.
//
// New2 (Skylake/Kaby Lake L3 leader sets, 175 states at associativity 4):
//   - Promote: if the accessed line has age 1 set it to 0, otherwise to 1.
//   - Evict:   the first line from the left whose age is 3.
//   - Insert:  set the evicted line's age to 1.
//   - Normalize (after hit and miss): while no line has age 3, increase the
//     age of every line by 1.

// newIntel is the shared machinery of New1 and New2.
type newIntel struct {
	n    int
	ages []int
}

func (s *newIntel) hasDistant() bool {
	for _, a := range s.ages {
		if a == MaxRRPV {
			return true
		}
	}
	return false
}

// normalize ages all lines (skipping the excluded line, or none if exclude
// is negative) until some line reaches age 3.
func (s *newIntel) normalize(exclude int) {
	for !s.hasDistant() {
		for i := range s.ages {
			if i != exclude {
				s.ages[i]++
			}
		}
	}
}

// evict returns the leftmost line with age 3 and re-inserts at age 1.
func (s *newIntel) evict() int {
	for i, a := range s.ages {
		if a == MaxRRPV {
			s.ages[i] = 1
			return i
		}
	}
	panic("policy: New1/New2 invariant violated: no distant line at eviction")
}

// resetByFill replays the initial fill from the power-on all-distant state.
func (s *newIntel) resetByFill(norm func(exclude int)) {
	for i := range s.ages {
		s.ages[i] = MaxRRPV
	}
	for i := 0; i < s.n; i++ {
		v := s.evict()
		norm(v)
	}
}

func (s *newIntel) cloneState() newIntel {
	c := newIntel{n: s.n, ages: make([]int, s.n)}
	copy(c.ages, s.ages)
	return c
}

// New1 is the undocumented Skylake/Kaby Lake L2 policy.
type New1 struct{ s newIntel }

// NewNew1 returns a New1 policy of the given associativity.
func NewNew1(assoc int) *New1 {
	p := &New1{s: newIntel{n: assoc, ages: make([]int, assoc)}}
	p.Reset()
	return p
}

func init() {
	Register("New1", func(assoc int) (Policy, error) { return NewNew1(assoc), nil })
}

// Name implements Policy.
func (p *New1) Name() string { return "New1" }

// Assoc implements Policy.
func (p *New1) Assoc() int { return p.s.n }

// OnHit implements Policy.
func (p *New1) OnHit(line int) {
	checkLine(p.s.n, line)
	p.s.ages[line] = 0
	p.s.normalize(line)
}

// OnMiss implements Policy.
func (p *New1) OnMiss() int {
	v := p.s.evict()
	p.s.normalize(v)
	return v
}

// Reset implements Policy.
func (p *New1) Reset() { p.s.resetByFill(p.s.normalize) }

// StateKey implements Policy.
func (p *New1) StateKey() string { return agesKey(p.s.ages) }

// Clone implements Policy.
func (p *New1) Clone() Policy { return &New1{s: p.s.cloneState()} }

// New2 is the undocumented Skylake/Kaby Lake L3 leader-set policy.
type New2 struct{ s newIntel }

// NewNew2 returns a New2 policy of the given associativity.
func NewNew2(assoc int) *New2 {
	p := &New2{s: newIntel{n: assoc, ages: make([]int, assoc)}}
	p.Reset()
	return p
}

func init() {
	Register("New2", func(assoc int) (Policy, error) { return NewNew2(assoc), nil })
}

// Name implements Policy.
func (p *New2) Name() string { return "New2" }

// Assoc implements Policy.
func (p *New2) Assoc() int { return p.s.n }

// OnHit implements Policy.
func (p *New2) OnHit(line int) {
	checkLine(p.s.n, line)
	if p.s.ages[line] == 1 {
		p.s.ages[line] = 0
	} else {
		p.s.ages[line] = 1
	}
	p.s.normalize(-1)
}

// OnMiss implements Policy.
func (p *New2) OnMiss() int {
	v := p.s.evict()
	p.s.normalize(-1)
	return v
}

// Reset implements Policy. New2's power-on state {3,3,3,3} is itself the
// state reached by the paper's Flush+Refill reset, so reset replays the fill
// from all-distant like the other policies.
func (p *New2) Reset() {
	p.s.resetByFill(func(int) { p.s.normalize(-1) })
}

// StateKey implements Policy.
func (p *New2) StateKey() string { return agesKey(p.s.ages) }

// Clone implements Policy.
func (p *New2) Clone() Policy { return &New2{s: p.s.cloneState()} }
