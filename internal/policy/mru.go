package policy

import "strings"

// MRU is the bit-PLRU / "most recently used bits" policy of Malamy et al.
// [26], as learned in the paper up to associativity 12 (Table 2). Every line
// carries one MRU bit; an access sets the line's bit. When the last zero bit
// would disappear, all other bits are cleared (the normalization step). The
// victim is the leftmost line whose bit is clear. The policy has 2^n - 2
// reachable control states (the all-zero and all-one vectors are never
// observed between accesses).
type MRU struct {
	n    int
	bits []uint8
}

// NewMRU returns an MRU policy of the given associativity.
func NewMRU(assoc int) *MRU {
	p := &MRU{n: assoc, bits: make([]uint8, assoc)}
	p.Reset()
	return p
}

func init() {
	Register("MRU", func(assoc int) (Policy, error) { return NewMRU(assoc), nil })
}

// Name implements Policy.
func (p *MRU) Name() string { return "MRU" }

// Assoc implements Policy.
func (p *MRU) Assoc() int { return p.n }

// touch sets line's MRU bit, clearing all others if the vector saturates.
func (p *MRU) touch(line int) {
	p.bits[line] = 1
	for _, b := range p.bits {
		if b == 0 {
			return
		}
	}
	for i := range p.bits {
		if i != line {
			p.bits[i] = 0
		}
	}
}

// OnHit implements Policy.
func (p *MRU) OnHit(line int) {
	checkLine(p.n, line)
	p.touch(line)
}

// OnMiss implements Policy. The leftmost line with a clear bit is freed and
// the incoming block is marked most recently used.
func (p *MRU) OnMiss() int {
	for i, b := range p.bits {
		if b == 0 {
			p.touch(i)
			return i
		}
	}
	panic("policy: MRU invariant violated: all bits set between accesses")
}

// Reset implements Policy. The initial state is the one reached after the
// initial fill touches lines 0..n-1 in order: the fill saturates the bit
// vector and normalization leaves only the last line marked.
func (p *MRU) Reset() {
	for i := range p.bits {
		p.bits[i] = 0
	}
	for i := 0; i < p.n; i++ {
		p.touch(i)
	}
}

// StateKey implements Policy.
func (p *MRU) StateKey() string {
	var sb strings.Builder
	for _, b := range p.bits {
		sb.WriteByte('0' + b)
	}
	return sb.String()
}

// Clone implements Policy.
func (p *MRU) Clone() Policy {
	c := &MRU{n: p.n, bits: make([]uint8, p.n)}
	copy(c.bits, p.bits)
	return c
}
