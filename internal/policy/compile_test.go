package policy

import (
	"math/rand"
	"strings"
	"testing"
)

// compileAll compiles every registered policy at the given associativity,
// skipping constructor constraints (PLRU at non-powers of two). In -short
// mode the exploration is bounded so the big assoc-8 state spaces (up to
// 65,536 states for SRRIP-FP-8) don't dominate the race-enabled CI run;
// policies over the bound are skipped there and covered by the nightly full
// suite.
func compileAll(t *testing.T, assoc int) map[string]*Table {
	t.Helper()
	bound := DefaultCompileStates
	if testing.Short() {
		bound = 20000
	}
	out := make(map[string]*Table)
	for _, name := range Names() {
		p, err := New(name, assoc)
		if err != nil {
			if strings.EqualFold(name, "plru") {
				continue
			}
			t.Fatalf("New(%s, %d): %v", name, assoc, err)
		}
		tab, err := CompileBound(p, bound)
		if err != nil {
			if strings.Contains(err.Error(), "more than") {
				// Over the bound (e.g. BIP-8's recency×counter product
				// space): exactly the policies the interpreted fallback
				// exists for.
				continue
			}
			t.Fatalf("Compile(%s, %d): %v", name, assoc, err)
		}
		out[name] = tab
	}
	return out
}

// TestCompiledMatchesInterpreted is the compiled↔interpreted equivalence
// property: for every registered policy at associativity 4 and 8, replaying
// a random input word through the interpreted Policy and its compiled Table
// produces identical outputs and identical StateKey strings at every step.
// Key equality is stronger than the required StateKey partitioning — the
// table serves the canonical interpreted keys verbatim — so states are
// partitioned identically by construction, and the check also pins the
// drop-in property (cache.Set.StateKey, reset search, and snapshots see
// bit-identical keys either way).
func TestCompiledMatchesInterpreted(t *testing.T) {
	for _, assoc := range []int{4, 8} {
		for name, tab := range compileAll(t, assoc) {
			p := MustNew(name, assoc)
			p.Reset()
			tt := tab.Clone()
			tt.Reset()
			rng := rand.New(rand.NewSource(int64(13*assoc) + int64(len(name))))
			for i := 0; i < 400; i++ {
				in := rng.Intn(NumInputs(assoc))
				if got, want := Apply(tt, in), Apply(p, in); got != want {
					t.Fatalf("%s-%d: compiled output %d, interpreted %d at step %d", name, assoc, got, want, i)
				}
				if got, want := tt.StateKey(), p.StateKey(); got != want {
					t.Fatalf("%s-%d: compiled state %q, interpreted %q at step %d", name, assoc, got, want, i)
				}
				if i == 200 {
					// Forked clones must be independent values.
					save := tt.StateKey()
					fork := tt.Clone()
					fork.OnMiss()
					if tt.StateKey() != save {
						t.Fatalf("%s-%d: clone mutation leaked into the original", name, assoc)
					}
				}
			}
		}
	}
}

// TestCompiledStatePartition checks the partition property directly on the
// table: two distinct state ids never carry the same interpreted key, so
// integer state identity and StateKey identity coincide.
func TestCompiledStatePartition(t *testing.T) {
	for name, tab := range compileAll(t, 4) {
		seen := make(map[string]int32, tab.NumStates())
		for s := int32(0); int(s) < tab.NumStates(); s++ {
			key := tab.KeyOf(s)
			if prev, dup := seen[key]; dup {
				t.Fatalf("%s: states %d and %d share key %q", name, prev, s, key)
			}
			seen[key] = s
		}
	}
}

// TestCompileMatchesMealyStateCounts pins the compiled state spaces of the
// published assoc-4 policies: the raw reachable control-state counts of the
// extraction (New2's 175 raw states minimize to the paper's 160; the others
// are already minimal).
func TestCompileMatchesMealyStateCounts(t *testing.T) {
	want := map[string]int{
		"FIFO": 4, "LRU": 24, "PLRU": 8, "MRU": 14,
		"LIP": 24, "SRRIP-HP": 178, "SRRIP-FP": 256, "New1": 160, "New2": 175,
	}
	tabs := compileAll(t, 4)
	for name, states := range want {
		tab, ok := tabs[strings.ToLower(name)]
		if !ok {
			t.Fatalf("%s not compiled", name)
		}
		if tab.NumStates() != states {
			t.Errorf("%s-4: %d compiled states, want %d", name, tab.NumStates(), states)
		}
	}
}

// TestCompileRejectsNondeterministic: policy.Random violates the StateKey
// contract (its behaviour is not a function of its control state), so the
// validation replay must refuse to compile it and CompileOrSelf must fall
// back to the interpreted policy.
func TestCompileRejectsNondeterministic(t *testing.T) {
	r := NewRandom(4, 7)
	if tab, err := Compile(r); err == nil {
		t.Fatalf("Compile(Random) produced a %d-state table; want an error", tab.NumStates())
	}
	if got := CompileOrSelf(NewRandom(4, 7)); got.Name() != "Random" {
		t.Fatalf("CompileOrSelf(Random) = %T %s, want the interpreted policy", got, got.Name())
	}
}

// TestCompileBoundFallsBack: a bound below the reachable state count fails
// loudly and CompileOrSelf hands back the original policy.
func TestCompileBound(t *testing.T) {
	if _, err := CompileBound(NewLRU(4), 5); err == nil {
		t.Fatal("CompileBound(LRU-4, 5) succeeded; LRU-4 has 24 states")
	}
	tab, err := CompileBound(NewLRU(4), 24)
	if err != nil {
		t.Fatalf("CompileBound(LRU-4, 24): %v", err)
	}
	if tab.NumStates() != 24 {
		t.Fatalf("LRU-4 compiled to %d states, want 24", tab.NumStates())
	}
	// CompileOrSelf short-circuits on an existing table.
	if CompileOrSelf(tab) != Policy(tab) {
		t.Fatal("CompileOrSelf(table) did not return the table itself")
	}
}

// TestCompileState roots the table at a non-initial control state, the
// compiled analog of mealy.FromPolicyState.
func TestCompileState(t *testing.T) {
	p := NewLRU(4)
	p.OnMiss()
	p.OnHit(2)
	key := p.StateKey()
	tab, err := CompileState(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tab.StateKey() != key {
		t.Fatalf("rooted table starts at %q, want %q", tab.StateKey(), key)
	}
	if tab.InitState() != 0 || tab.State() != 0 {
		t.Fatalf("rooted table init/state = %d/%d, want 0/0", tab.InitState(), tab.State())
	}
}

// TestTableViews: At returns independent positioned views sharing the
// arrays, and Step never touches the receiver state.
func TestTableViews(t *testing.T) {
	tab, err := Compile(NewLRU(4))
	if err != nil {
		t.Fatal(err)
	}
	v := tab.At(5)
	if v.State() != 5 || tab.State() != 0 {
		t.Fatalf("At leaked state: view %d, original %d", v.State(), tab.State())
	}
	next, out := tab.Step(0, tab.Assoc())
	if tab.State() != 0 {
		t.Fatal("Step mutated the receiver")
	}
	v2 := tab.At(0)
	if got := v2.OnMiss(); got != int(out) {
		t.Fatalf("Step output %d, OnMiss %d", out, got)
	}
	if v2.State() != next {
		t.Fatalf("Step successor %d, OnMiss landed in %d", next, v2.State())
	}
}
