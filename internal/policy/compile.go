package policy

// This file implements the compiled policy kernel: the interpreter→compiled
// dispatch move of the VM-optimization literature applied to replacement
// policies. The paper's policies are finite Mealy machines (Definition 2.1),
// so instead of interpreting them through the Policy interface — virtual
// OnHit/OnMiss dispatch per access, string StateKey encoding for identity,
// deep Clone per forked session — Compile explores the control-state space
// once and freezes it into a dense integer transition table. A *Table is
// itself a Policy, so it is a drop-in replacement everywhere, with O(1)
// Clone (the mutable state is one int32), O(1) StateKey (a precomputed
// string per state id), and one array lookup per input symbol.
//
// The exploration is the canonical one: breadth-first over Clone/Apply with
// StateKey as state identity, exactly the order internal/mealy extraction
// used before it was re-platformed onto Compile — so the state numbering
// (and hence every published model artifact) is unchanged.

import (
	"fmt"
)

// DefaultCompileStates is the state-count bound Compile enforces: policies
// with more reachable control states stay interpreted. It comfortably covers
// every assoc-8 policy in the zoo (SRRIP-FP-8 tops out at 65,536 states)
// while keeping a compile attempt on an unexpectedly huge policy bounded.
const DefaultCompileStates = 1 << 17

// Table is a policy compiled to dense next-state/output tables over interned
// state ids. The arrays are immutable after compilation and shared by every
// clone; the only mutable field is the current state id, which is what makes
// compiled sessions copyable values.
type Table struct {
	name  string
	assoc int
	numIn int
	init  int32
	state int32
	next  []int32  // next[int(s)*numIn+a] = successor state id
	out   []int32  // out[int(s)*numIn+a] = policy output (Bottom or a line)
	keys  []string // canonical interpreted StateKey per state id
}

// Compile compiles p into a transition table by exhaustive exploration of
// its control-state space from the initial state cs0, bounded by
// DefaultCompileStates. It fails — and the caller should fall back to the
// interpreted policy — when the bound is exceeded or when p violates the
// deterministic StateKey contract (e.g. policy.Random, whose behaviour is
// not a function of its StateKey).
func Compile(p Policy) (*Table, error) {
	return CompileBound(p, DefaultCompileStates)
}

// CompileBound is Compile with an explicit state-count bound; maxStates <= 0
// means unbounded.
func CompileBound(p Policy, maxStates int) (*Table, error) {
	root := p.Clone()
	root.Reset()
	return CompileState(root, maxStates)
}

// CompileState compiles the table rooted at p's *current* control state
// instead of cs0 — the compiled analog of mealy.FromPolicyState, used to
// build ground-truth machines for hardware experiments where the reset
// sequence parks the policy in a state other than the canonical initial one.
func CompileState(p Policy, maxStates int) (*Table, error) {
	n := p.Assoc()
	numIn := NumInputs(n)
	root := p.Clone()

	index := map[string]int32{root.StateKey(): 0}
	frontier := []Policy{root}
	keys := []string{root.StateKey()}
	var next, out []int32

	for head := 0; head < len(frontier); head++ {
		cur := frontier[head]
		for a := 0; a < numIn; a++ {
			succ := cur.Clone()
			o := Apply(succ, a)
			key := succ.StateKey()
			id, seen := index[key]
			if !seen {
				id = int32(len(frontier))
				if maxStates > 0 && int(id) >= maxStates {
					return nil, fmt.Errorf("policy: %s has more than %d reachable states", p.Name(), maxStates)
				}
				index[key] = id
				frontier = append(frontier, succ)
				keys = append(keys, key)
			}
			next = append(next, id)
			out = append(out, int32(o))
		}
	}

	t := &Table{
		name:  p.Name(),
		assoc: n,
		numIn: numIn,
		init:  0,
		state: 0,
		next:  next,
		out:   out,
		keys:  keys,
	}
	if err := t.validate(root); err != nil {
		return nil, err
	}
	return t, nil
}

// validate spot-checks the compiled table against the interpreted policy by
// replaying a fixed pseudo-random input word and comparing outputs and state
// keys symbol by symbol. Exploration alone cannot detect a policy whose
// behaviour is not a function of its StateKey (the contract Policy
// documents): such a policy — policy.Random, or any Clone that shares
// mutable state — folds distinct behaviours onto one table state, and the
// replay diverges almost immediately.
func (t *Table) validate(root Policy) error {
	steps := 128 + 4*len(t.keys)
	if steps > 2048 {
		steps = 2048
	}
	ref := root.Clone()
	state := t.state
	rng := uint64(0x9E3779B97F4A7C15)
	for i := 0; i < steps; i++ {
		rng = rng*6364136223846793005 + 1442695040888963407
		a := int(rng>>33) % t.numIn
		base := int(state)*t.numIn + a
		want := Apply(ref, a)
		state = t.next[base]
		if int(t.out[base]) != want {
			return fmt.Errorf("policy: %s is not compilable: output diverged from the interpreter at replay step %d (StateKey does not determine behaviour)", t.name, i)
		}
		if t.keys[state] != ref.StateKey() {
			return fmt.Errorf("policy: %s is not compilable: state key diverged from the interpreter at replay step %d", t.name, i)
		}
	}
	return nil
}

// CompileOrSelf returns the compiled table of p when p is compilable within
// the default state bound, and p itself otherwise — the interpreted-fallback
// helper the simulator layers use to make the kernel default-on without
// refusing uncompilable policies. A policy that is already a *Table is
// returned as is.
func CompileOrSelf(p Policy) Policy {
	if t, ok := p.(*Table); ok {
		return t
	}
	if t, err := Compile(p); err == nil {
		return t
	}
	return p
}

// Name implements Policy: the compiled table keeps the source policy's name.
func (t *Table) Name() string { return t.name }

// Assoc implements Policy.
func (t *Table) Assoc() int { return t.assoc }

// NumStates returns the number of compiled control states.
func (t *Table) NumStates() int { return len(t.keys) }

// NumInputs returns the size of the input alphabet (Assoc()+1).
func (t *Table) NumInputs() int { return t.numIn }

// OnHit implements Policy: one array lookup.
func (t *Table) OnHit(line int) {
	checkLine(t.assoc, line)
	t.state = t.next[int(t.state)*t.numIn+line]
}

// OnMiss implements Policy: one array lookup for the victim and one for the
// successor state.
func (t *Table) OnMiss() int {
	base := int(t.state)*t.numIn + t.assoc
	v := t.out[base]
	t.state = t.next[base]
	return int(v)
}

// Reset implements Policy.
func (t *Table) Reset() { t.state = t.init }

// StateKey implements Policy: the canonical interpreted key of the current
// state, served from the table — no formatting, identical strings to the
// interpreted policy's StateKey.
func (t *Table) StateKey() string { return t.keys[t.state] }

// Clone implements Policy: the arrays are shared, only the one-int32 state
// is copied.
func (t *Table) Clone() Policy {
	c := *t
	return &c
}

// State returns the current control state id — the value layers that carry
// table states directly (cache sets, forked simulator sessions) fork and
// park instead of policy objects.
func (t *Table) State() int32 { return t.state }

// InitState returns the id of the state the table was rooted at.
func (t *Table) InitState() int32 { return t.init }

// At returns an independent view of the table positioned at state s.
func (t *Table) At(s int32) *Table {
	t.check(s)
	c := *t
	c.state = s
	return &c
}

// Step is the pure kernel transition: successor state and output of one
// input symbol from state s, without touching the receiver's current state.
func (t *Table) Step(s int32, in int) (next, out int32) {
	t.check(s)
	if in < 0 || in >= t.numIn {
		panic(fmt.Sprintf("policy: input %d out of range for associativity %d", in, t.assoc))
	}
	base := int(s)*t.numIn + in
	return t.next[base], t.out[base]
}

// KeyOf returns the canonical interpreted StateKey of state s.
func (t *Table) KeyOf(s int32) string {
	t.check(s)
	return t.keys[s]
}

func (t *Table) check(s int32) {
	if s < 0 || int(s) >= len(t.keys) {
		panic(fmt.Sprintf("policy: state %d out of range for %d-state table", s, len(t.keys)))
	}
}
