package policy

import (
	"fmt"
	"strconv"
)

// Duel composes two policies into a deterministic, set-local caricature of
// DIP set dueling: both duelists track every access in lockstep, a
// saturating PSEL counter advances on each miss where they disagree about
// the victim, and leadership flips when the counter wraps. The leader's
// victim is the one the cache acts on.
//
// Unlike the hardware-style adaptive wrappers in internal/hw (whose PSEL is
// a CPU-wide register shared across sets, making a single set's behavior
// nondeterministic), Duel keeps the counter in the per-set control state:
// StateKey covers both duelists plus the counter and leader bit, so the
// composite is a deterministic policy.Policy that can be compiled, learned,
// and published as a model artifact. The synth.Family zoo generator builds
// its DuelZ members this way.
type duel struct {
	a, b   Policy
	limit  int // PSEL wrap threshold: 1 << bits
	psel   int
	leader int // 0: a leads, 1: b leads
}

// NewDuel builds the duel composite. Both policies must share an
// associativity; pselBits (>= 1) sizes the saturating counter.
func NewDuel(a, b Policy, pselBits int) (Policy, error) {
	if a.Assoc() != b.Assoc() {
		return nil, fmt.Errorf("policy: duel of mismatched associativities %d and %d", a.Assoc(), b.Assoc())
	}
	if pselBits < 1 {
		return nil, fmt.Errorf("policy: duel needs at least one PSEL bit")
	}
	return &duel{a: a, b: b, limit: 1 << pselBits}, nil
}

// Name implements Policy.
func (p *duel) Name() string { return "Duel(" + p.a.Name() + "/" + p.b.Name() + ")" }

// Assoc implements Policy.
func (p *duel) Assoc() int { return p.a.Assoc() }

// OnHit implements Policy: both duelists observe every hit.
func (p *duel) OnHit(line int) {
	p.a.OnHit(line)
	p.b.OnHit(line)
}

// OnMiss implements Policy: both duelists pick a victim and update their
// own control state, and the leader's choice is the one the cache acts on.
// Disagreement advances PSEL; on wrap, leadership flips. The loser keeps
// its own bookkeeping (the Policy interface offers no way to impose a
// victim), so the duelists' views may drift — the composite is still a
// total, deterministic policy, which is all the zoo needs.
func (p *duel) OnMiss() int {
	va := p.a.OnMiss()
	vb := p.b.OnMiss()
	victim := va
	if p.leader == 1 {
		victim = vb
	}
	if va != vb {
		p.psel++
		if p.psel >= p.limit {
			p.psel = 0
			p.leader = 1 - p.leader
		}
	}
	return victim
}

// Reset implements Policy.
func (p *duel) Reset() {
	p.a.Reset()
	p.b.Reset()
	p.psel = 0
	p.leader = 0
}

// StateKey implements Policy: the composite control state is the pair of
// duelist states plus the counter and leader.
func (p *duel) StateKey() string {
	return p.a.StateKey() + "|" + p.b.StateKey() + "|" + strconv.Itoa(p.psel) + "," + strconv.Itoa(p.leader)
}

// Clone implements Policy.
func (p *duel) Clone() Policy {
	return &duel{a: p.a.Clone(), b: p.b.Clone(), limit: p.limit, psel: p.psel, leader: p.leader}
}

var _ Policy = (*duel)(nil)
