package policy

import (
	"fmt"
	"math/rand"
)

// Random evicts a pseudo-random line on every miss. It deliberately violates
// the determinism assumption of the learning pipeline: the paper observed a
// nondeterministic thrash-resistant policy on one of Haswell's L3 leader-set
// groups (Table 4, Appendix B), and this policy plays that role in the
// simulated hardware so that the failure mode — Polca detecting inconsistent
// eviction behaviour — is reproducible.
//
// Random is intentionally not in the registry used for learning experiments;
// construct it explicitly.
type Random struct {
	n   int
	rng *rand.Rand
}

// NewRandom returns a Random policy seeded deterministically (the sequence
// of evictions is reproducible, but does not depend on the access pattern,
// so it looks nondeterministic to a learner that replays prefixes).
func NewRandom(assoc int, seed int64) *Random {
	return &Random{n: assoc, rng: rand.New(rand.NewSource(seed))}
}

// Name implements Policy.
func (p *Random) Name() string { return "Random" }

// Assoc implements Policy.
func (p *Random) Assoc() int { return p.n }

// OnHit implements Policy.
func (p *Random) OnHit(line int) { checkLine(p.n, line) }

// OnMiss implements Policy.
func (p *Random) OnMiss() int { return p.rng.Intn(p.n) }

// Reset implements Policy. The RNG stream is deliberately not rewound:
// replaying a prefix after Reset yields different evictions, which is what
// makes the policy observationally nondeterministic.
func (p *Random) Reset() {}

// StateKey implements Policy. Random has no meaningful control state.
func (p *Random) StateKey() string { return fmt.Sprintf("rng@%p", p.rng) }

// Clone implements Policy. The clone shares the RNG stream.
func (p *Random) Clone() Policy { return &Random{n: p.n, rng: p.rng} }
