package policy

// This file implements the batched structure-of-arrays layer over the
// compiled policy kernel. A *Table already reduces one session's mutable
// state to a single int32; StepBatch advances a whole vector of such states
// by one input symbol in a single pass over the shared transition arrays,
// and Batch packs N concurrent sessions as two contiguous matrices — a
// state vector and a dense-block-id content matrix — instead of N
// heap-allocated session structs. One cache line of the state vector holds
// sixteen sessions, so a lockstep pass touches memory linearly where the
// per-session path chases a pointer per fork.
//
// The Batch layer is deliberately mechanical: it knows the transition
// table and the content layout, but nothing about the oracle protocol
// (eviction probes, fresh-block naming, counters). Package polca drives it.

import "fmt"

// StepBatch advances every state in states by the same input symbol, in
// place: states[i] becomes the successor of states[i] under sym. It is the
// lockstep analog of Step for the common case where a whole lane group
// consumes one symbol (an Evct sweep, a shared-prefix replay). The symbol
// is validated once; states must hold valid ids for this table.
func (t *Table) StepBatch(states []int32, sym int32) {
	if sym < 0 || int(sym) >= t.numIn {
		panic(fmt.Sprintf("policy: input %d out of range for associativity %d", sym, t.assoc))
	}
	next := t.next
	numIn := t.numIn
	s := int(sym)
	for i, st := range states {
		states[i] = next[int(st)*numIn+s]
	}
}

// StepBatchOut is StepBatch that also writes each lane's policy output
// (Bottom for a hit symbol, the victim line for Evct) into outs, which
// must be at least as long as states.
func (t *Table) StepBatchOut(states []int32, sym int32, outs []int32) {
	if sym < 0 || int(sym) >= t.numIn {
		panic(fmt.Sprintf("policy: input %d out of range for associativity %d", sym, t.assoc))
	}
	if len(outs) < len(states) {
		panic(fmt.Sprintf("policy: StepBatchOut outs has %d entries for %d states", len(outs), len(states)))
	}
	next, out := t.next, t.out
	numIn := t.numIn
	s := int(sym)
	for i, st := range states {
		base := int(st)*numIn + s
		states[i] = next[base]
		outs[i] = out[base]
	}
}

// Batch is a structure-of-arrays block of N simulation sessions over one
// compiled table: a contiguous state vector plus a contiguous content
// matrix of dense block ids (row l, column i = the block resident at line
// i of lane l). There are no per-session structs; a lane is an index, a
// fork is a row copy, and a lockstep step is one pass over the vector.
type Batch struct {
	tab   *Table
	assoc int
	cc0   []int32
	state []int32 // lane -> control state id
	cont  []int32 // lane*assoc + line -> dense block id
}

// NewBatch builds a block of lanes sessions, each at the table's initial
// state with the initial content cc0 (one dense block id per line).
func NewBatch(t *Table, lanes int, cc0 []int32) *Batch {
	if len(cc0) != t.assoc {
		panic(fmt.Sprintf("policy: initial content has %d lines, associativity is %d", len(cc0), t.assoc))
	}
	b := &Batch{
		tab:   t,
		assoc: t.assoc,
		cc0:   append([]int32(nil), cc0...),
		state: make([]int32, lanes),
		cont:  make([]int32, lanes*t.assoc),
	}
	for l := 0; l < lanes; l++ {
		b.ResetLane(l)
	}
	return b
}

// Table returns the shared transition table.
func (b *Batch) Table() *Table { return b.tab }

// Lanes returns the number of sessions in the block.
func (b *Batch) Lanes() int { return len(b.state) }

// States exposes the contiguous state vector; subslices of it feed
// StepBatch directly, with no gather/scatter.
func (b *Batch) States() []int32 { return b.state }

// State returns lane l's control state id.
func (b *Batch) State(l int) int32 { return b.state[l] }

// SetState overwrites lane l's control state id.
func (b *Batch) SetState(l int, s int32) { b.state[l] = s }

// Row returns lane l's content row (aliasing the matrix, length assoc).
func (b *Batch) Row(l int) []int32 {
	return b.cont[l*b.assoc : (l+1)*b.assoc : (l+1)*b.assoc]
}

// ResetLane rewinds lane l to the initial state and content.
func (b *Batch) ResetLane(l int) {
	b.state[l] = b.tab.InitState()
	copy(b.Row(l), b.cc0)
}

// LoadLane positions lane l at an arbitrary session state: control state s
// and content row (length assoc, copied).
func (b *Batch) LoadLane(l int, s int32, row []int32) {
	b.tab.check(s)
	if len(row) != b.assoc {
		panic(fmt.Sprintf("policy: content row has %d lines, associativity is %d", len(row), b.assoc))
	}
	b.state[l] = s
	copy(b.Row(l), row)
}

// CopyLane forks lane src into lane dst: the SoA analog of Session.Fork,
// one int32 plus one row copy.
func (b *Batch) CopyLane(dst, src int) {
	b.state[dst] = b.state[src]
	copy(b.Row(dst), b.Row(src))
}

// Scan returns the line of lane l holding block id, or -1 — the content
// membership lookup behind hit detection and eviction probes.
func (b *Batch) Scan(l int, id int32) int {
	for i, c := range b.Row(l) {
		if c == id {
			return i
		}
	}
	return -1
}

// StepRun advances the contiguous lane run [lo, hi) by one shared input
// symbol in a single StepBatchOut pass, writing each lane's policy output
// to outs[lo:hi]. Because lanes are SoA-contiguous, there is no gather or
// scatter — the run is a subslice of the state vector.
func (b *Batch) StepRun(lo, hi int, in int, outs []int32) {
	b.tab.StepBatchOut(b.state[lo:hi], int32(in), outs[lo:hi])
}

// StepLane advances lane l by table input in (a line index for a hit, the
// associativity for a miss) and returns the policy output. Content is not
// touched; callers that track residency update the row themselves (see
// AccessLane).
func (b *Batch) StepLane(l, in int) int32 {
	next, out := b.tab.Step(b.state[l], in)
	b.state[l] = next
	return out
}

// AccessLane feeds block id to lane l with full cache semantics: a
// resident block hits at its line, an absent one misses and replaces the
// policy's victim. It returns the hit line or -1, and the victim line or
// -1 — the batched equivalent of one kernel-session Access.
func (b *Batch) AccessLane(l int, id int32) (hit, victim int) {
	row := b.Row(l)
	for i, c := range row {
		if c == id {
			b.state[l], _ = b.tab.Step(b.state[l], i)
			return i, -1
		}
	}
	next, v := b.tab.Step(b.state[l], b.assoc)
	b.state[l] = next
	row[v] = id
	return -1, int(v)
}
