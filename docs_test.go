package repro_test

// Documentation gates: every package must carry a package doc comment, and
// every intra-repository markdown link must resolve. These run in the
// normal test suite and in the CI docs job, so documentation rot fails the
// build like any other regression.

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestPackageDocComments requires a package doc comment on every package in
// the repository — the root library, every internal package, every command,
// and every example. A package without one renders blank in go doc, which
// is how subsystems quietly become unexplained.
func TestPackageDocComments(t *testing.T) {
	var dirs []string
	for _, pattern := range []string{"internal/*", "cmd/*", "examples/*"} {
		m, err := filepath.Glob(pattern)
		if err != nil {
			t.Fatal(err)
		}
		dirs = append(dirs, m...)
	}
	dirs = append(dirs, ".")
	for _, dir := range dirs {
		if info, err := os.Stat(dir); err != nil || !info.IsDir() {
			continue
		}
		files, err := filepath.Glob(filepath.Join(dir, "*.go"))
		if err != nil {
			t.Fatal(err)
		}
		var sources []string
		for _, f := range files {
			if !strings.HasSuffix(f, "_test.go") {
				sources = append(sources, f)
			}
		}
		if len(sources) == 0 {
			continue
		}
		var doc string
		fset := token.NewFileSet()
		for _, f := range sources {
			parsed, err := parser.ParseFile(fset, f, nil, parser.PackageClauseOnly|parser.ParseComments)
			if err != nil {
				t.Errorf("%s: %v", f, err)
				continue
			}
			if parsed.Doc != nil && len(strings.TrimSpace(parsed.Doc.Text())) > len(doc) {
				doc = strings.TrimSpace(parsed.Doc.Text())
			}
		}
		if doc == "" {
			t.Errorf("package %s has no package doc comment", dir)
		} else if len(doc) < 40 {
			t.Errorf("package %s doc comment is a stub (%q) — say what the package is for", dir, doc)
		}
	}
}

var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// TestDocLinks resolves every relative markdown link in the repository's
// documentation. External links are left alone (CI has no network and they
// rot on their own schedule); an intra-repo link to a moved or deleted file
// is a broken doc we can and do catch.
func TestDocLinks(t *testing.T) {
	var mds []string
	for _, pattern := range []string{"*.md", "docs/*.md", ".github/*.md"} {
		m, err := filepath.Glob(pattern)
		if err != nil {
			t.Fatal(err)
		}
		mds = append(mds, m...)
	}
	if len(mds) == 0 {
		t.Fatal("no markdown files found")
	}
	for _, md := range mds {
		data, err := os.ReadFile(md)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			switch {
			case strings.HasPrefix(target, "http://"), strings.HasPrefix(target, "https://"),
				strings.HasPrefix(target, "mailto:"), strings.HasPrefix(target, "#"):
				continue
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(md), target)
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: broken link %q (%v)", md, m[1], err)
			}
		}
	}
}
