// Package repro is a from-scratch Go reproduction of "CacheQuery: Learning
// Replacement Policies from Hardware Caches" (Vila, Ganty, Guarnieri, Köpf;
// PLDI 2020).
//
// The library lives under internal/: replacement policies (internal/policy),
// Mealy machines (internal/mealy), the cache model (internal/cache), the
// Polca oracle (internal/polca), the L*-style learner (internal/learn), the
// MemBlockLang DSL (internal/mbl), the simulated silicon CPUs
// (internal/hw), the CacheQuery tool (internal/cachequery), explanation
// synthesis (internal/synth), end-to-end pipelines (internal/core) and the
// table/figure harness (internal/experiments).
//
// See README.md for a guided tour and DESIGN.md for the system inventory
// and design decisions. The benchmarks in bench_test.go regenerate every
// table and figure of the evaluation.
//
// The published model artifacts under models/ are regenerated (in parallel,
// with a learning cross-check) by cmd/genmodels:
//
//go:generate go run repro/cmd/genmodels -out models
package repro
