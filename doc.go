// Package repro is a from-scratch Go reproduction of "CacheQuery: Learning
// Replacement Policies from Hardware Caches" (Vila, Ganty, Guarnieri, Köpf;
// PLDI 2020).
//
// The library lives under internal/, mirroring the paper's stack bottom to
// top:
//
//   - internal/policy — executable replacement policies and policy.Compile,
//     which freezes a policy's control-state space into dense transition
//     tables (the compiled kernel every simulator layer runs on)
//   - internal/cache — the n-way cache-set model and reset-sequence search
//   - internal/hw — simulated silicon: three-level hierarchies with slice
//     hashing, prefetchers, noise, CAT masking and adaptive L3s
//   - internal/cachequery — the CacheQuery tool: address provisioning,
//     level filtering, latency calibration, voting, result memoization
//   - internal/mbl — the MemBlockLang query DSL
//   - internal/polca — the Polca oracle (Algorithm 1): policy-level
//     queries over block probes, with a prefix-trie probe memo and parked
//     simulator sessions
//   - internal/qstore — the generic lock-striped prefix-trie query store
//     (memoization, session parking, snapshots, bloom/arena fast path)
//   - internal/intern — dense integer interning for hot-path keys
//   - internal/learn — two Mealy-machine learners (L*-style table and
//     discrimination tree) over one batched, memoizing query engine
//   - internal/mealy — Mealy machines: minimization, equivalence, JSON
//   - internal/synth — CEGIS synthesis of rule-based policy explanations
//   - internal/faulty — deterministic fault injection for resilience soak
//   - internal/core — end-to-end pipelines (simulator and hardware
//     learning, snapshots, retry/quarantine)
//   - internal/daemon — the polcad HTTP daemon: shared per-(policy,assoc)
//     engines, single-flighted queries, learning jobs with SSE progress,
//     tenant quotas, snapshot-backed graceful drain
//   - internal/experiments — the paper's table/figure harness
//
// The commands under cmd/ are thin shells over those packages: cmd/polca
// (the learning CLI), cmd/polcad and cmd/polcaload (the daemon and its
// load harness — see docs/API.md), cmd/experiments (paper tables),
// cmd/genmodels (model artifacts), cmd/benchjson (benchmark baselines and
// the CI regression gate), cmd/cachequery and cmd/cqsynth (direct access
// to the probing and synthesis layers).
//
// See README.md for a guided tour and DESIGN.md for the system inventory,
// design decisions and the performance narrative. The benchmarks in
// bench_test.go regenerate every table and figure of the evaluation.
//
// The published model artifacts under models/ are regenerated (in parallel,
// with a learning cross-check) by cmd/genmodels:
//
//go:generate go run repro/cmd/genmodels -out models
package repro
