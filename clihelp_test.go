package repro_test

// Golden -h transcripts for every command in cmd/. The golden files under
// testdata/help are the reviewed copy of each binary's flag surface: a new,
// renamed, or re-documented flag shows up as a golden diff, and every flag
// is required to carry a usage string. Regenerate after a deliberate change
// with:
//
//	go test -run TestCommandHelp -update .

import (
	"flag"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden -h transcripts under testdata/help")

// helpCommands is every binary the repository ships.
var helpCommands = []string{
	"benchjson", "cachequery", "cqsynth", "experiments",
	"genmodels", "polca", "polcad", "polcaload", "polcaworker",
}

func TestCommandHelp(t *testing.T) {
	bindir := t.TempDir()
	for _, name := range helpCommands {
		t.Run(name, func(t *testing.T) {
			bin := filepath.Join(bindir, name)
			build := exec.Command("go", "build", "-o", bin, "repro/cmd/"+name)
			if out, err := build.CombinedOutput(); err != nil {
				t.Fatalf("building %s: %v\n%s", name, err, out)
			}
			// flag's ErrHelp path prints the usage and exits 0; anything
			// else (a panic in main before Parse, exit 2) is a bug.
			out, err := exec.Command(bin, "-h").CombinedOutput()
			if err != nil {
				t.Fatalf("%s -h exited nonzero: %v\n%s", name, err, out)
			}
			if len(out) == 0 {
				t.Fatalf("%s -h printed nothing", name)
			}
			// "Usage of <path>:" embeds the temp build path; normalize it
			// to the bare command name so the transcript is stable.
			out = []byte(strings.ReplaceAll(string(out), bin, name))
			checkFlagUsageLines(t, name, string(out))

			golden := filepath.Join("testdata", "help", name+".golden")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, out, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("no golden transcript (run go test -run TestCommandHelp -update .): %v", err)
			}
			if string(want) != string(out) {
				t.Errorf("%s -h differs from %s — if the change is deliberate, regenerate with -update\ngot:\n%s\nwant:\n%s",
					name, golden, out, want)
			}
		})
	}
}

// checkFlagUsageLines requires every flag in a PrintDefaults block to carry
// a usage description: flag prints "  -name type" followed by an indented
// "    \t<usage>" line, and an empty usage string leaves the description
// line blank (or collapses it to just the default), which reads as an
// undocumented flag.
func checkFlagUsageLines(t *testing.T, name, out string) {
	t.Helper()
	lines := strings.Split(out, "\n")
	for i, line := range lines {
		if !strings.HasPrefix(line, "  -") {
			continue
		}
		flagName := strings.Fields(line)[0]
		if i+1 >= len(lines) {
			t.Errorf("%s: flag %s has no usage line", name, flagName)
			continue
		}
		desc := strings.TrimSpace(lines[i+1])
		if desc == "" || strings.HasPrefix(desc, "(default") {
			t.Errorf("%s: flag %s has an empty usage string (line %d)", name, flagName, i+2)
		}
	}
}
